//! The discrete-event engine and the metrics the study scores.
//!
//! Two event sources drive the system: request arrivals (pre-generated,
//! time-ordered) and service completions (a min-heap). Completions at or
//! before an arrival instant are applied first, so the dispatcher always
//! sees up-to-date queues; ties inside the heap break on server index.
//! A run is a pure function of `(servers, requests, dispatcher)`.

use crate::dispatch::{DispatchView, Dispatcher, ServerView};
use crate::model::{LbRequest, ServerCfg};
use crate::scenario::Scenario;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Mean-slowdown penalty charged per dropped request — an SLO-style cost
/// standing in for the retry/timeout a real client would suffer. Large
/// enough that overflowing bounded queues can never pay off.
pub const DROP_SLOWDOWN_PENALTY: f64 = 100.0;

/// EWMA weight (1/8 new sample, like TCP's srtt) for per-server latency.
const EWMA_SHIFT: u32 = 3;

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LbMetrics {
    /// Requests offered to the dispatcher.
    pub offered: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests dropped at a full queue.
    pub dropped: u64,
    /// Sum of per-request slowdowns over completed requests.
    pub sum_slowdown: f64,
    /// Sum of response times over completed requests, µs.
    pub sum_response_us: u64,
    /// Busy time per server, µs (index-aligned with the fleet).
    pub busy_us: Vec<u64>,
    /// Virtual time of the last event, µs.
    pub duration_us: u64,
    /// Deepest queue observed on any server.
    pub max_queue_seen: usize,
}

impl LbMetrics {
    /// Mean slowdown over all offered requests; a completed request
    /// contributes `response / ideal` (ideal = its service time on an
    /// unloaded fastest server), a dropped one contributes
    /// [`DROP_SLOWDOWN_PENALTY`]. Lower is better; 1.0 is unreachable
    /// perfection.
    pub fn mean_slowdown(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.sum_slowdown + self.dropped as f64 * DROP_SLOWDOWN_PENALTY) / self.offered as f64
    }

    /// Mean response time over completed requests, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.sum_response_us as f64 / self.completed as f64
    }

    /// Fraction of offered requests dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Mean busy fraction across the fleet.
    pub fn utilization(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_us.iter().sum();
        busy as f64 / (self.duration_us as f64 * self.busy_us.len() as f64)
    }
}

struct ServerState {
    cfg: ServerCfg,
    /// Waiting requests: (request index, service time on this server, µs).
    queue: VecDeque<(usize, u64)>,
    /// In-service request: (request index, finish time, µs).
    in_service: Option<(usize, u64)>,
    ewma_latency_us: u64,
    busy_us: u64,
}

impl ServerState {
    fn view(&self) -> ServerView {
        ServerView {
            queue_len: self.queue.len(),
            inflight: self.queue.len() + usize::from(self.in_service.is_some()),
            speed: self.cfg.speed,
            ewma_latency_us: self.ewma_latency_us,
        }
    }
}

/// Run `requests` (time-ordered) against `servers` under `dispatcher`.
///
/// # Panics
/// If the fleet is empty, requests are out of order, or the dispatcher
/// returns an out-of-range index.
pub fn run(
    servers: &[ServerCfg],
    requests: &[LbRequest],
    dispatcher: &mut dyn Dispatcher,
) -> LbMetrics {
    assert!(!servers.is_empty(), "need at least one server");
    let vmax = servers.iter().map(|s| s.speed).max().unwrap();
    let ideal = ServerCfg::new(vmax, usize::MAX >> 1);

    let mut fleet: Vec<ServerState> = servers
        .iter()
        .map(|&cfg| ServerState {
            cfg,
            queue: VecDeque::new(),
            in_service: None,
            ewma_latency_us: 0,
            busy_us: 0,
        })
        .collect();
    // completion agenda: (finish time, server index)
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

    let mut m = LbMetrics {
        offered: requests.len() as u64,
        completed: 0,
        dropped: 0,
        sum_slowdown: 0.0,
        sum_response_us: 0,
        busy_us: vec![0; servers.len()],
        duration_us: 0,
        max_queue_seen: 0,
    };

    let mut views: Vec<ServerView> = Vec::with_capacity(fleet.len());
    let mut last_arrival = 0u64;

    let complete_until = |t: u64,
                          fleet: &mut Vec<ServerState>,
                          completions: &mut BinaryHeap<Reverse<(u64, usize)>>,
                          m: &mut LbMetrics| {
        while let Some(&Reverse((finish, six))) = completions.peek() {
            if finish > t {
                break;
            }
            completions.pop();
            let s = &mut fleet[six];
            let (rix, _) = s.in_service.take().expect("completion without service");
            let req = &requests[rix];
            let response = finish - req.arrival_us;
            m.completed += 1;
            m.sum_response_us += response;
            m.sum_slowdown += response as f64 / ideal.service_us(req.size) as f64;
            m.duration_us = m.duration_us.max(finish);
            s.ewma_latency_us = if s.ewma_latency_us == 0 {
                response
            } else {
                s.ewma_latency_us - (s.ewma_latency_us >> EWMA_SHIFT) + (response >> EWMA_SHIFT)
            };
            if let Some((nrix, service)) = s.queue.pop_front() {
                s.in_service = Some((nrix, finish + service));
                s.busy_us += service;
                completions.push(Reverse((finish + service, six)));
            }
        }
    };

    for (rix, req) in requests.iter().enumerate() {
        assert!(req.arrival_us >= last_arrival, "requests must be time-ordered");
        last_arrival = req.arrival_us;
        complete_until(req.arrival_us, &mut fleet, &mut completions, &mut m);
        m.duration_us = m.duration_us.max(req.arrival_us);

        views.clear();
        views.extend(fleet.iter().map(ServerState::view));
        let view = DispatchView { now_us: req.arrival_us, req_size: req.size, servers: &views };
        let six = dispatcher.pick(&view);
        assert!(six < fleet.len(), "dispatcher returned server {six} of {}", fleet.len());

        let s = &mut fleet[six];
        let service = s.cfg.service_us(req.size);
        if s.in_service.is_none() {
            s.in_service = Some((rix, req.arrival_us + service));
            s.busy_us += service;
            completions.push(Reverse((req.arrival_us + service, six)));
        } else if s.queue.len() < s.cfg.queue_cap {
            s.queue.push_back((rix, service));
            m.max_queue_seen = m.max_queue_seen.max(s.queue.len());
        } else {
            m.dropped += 1;
        }
    }
    complete_until(u64::MAX, &mut fleet, &mut completions, &mut m);

    for (ix, s) in fleet.iter().enumerate() {
        m.busy_us[ix] = s.busy_us;
    }
    m
}

/// Run a [`Scenario`] end to end (generates its workload, then [`run`]s).
pub fn simulate<D: Dispatcher>(scenario: &Scenario, dispatcher: &mut D) -> LbMetrics {
    run(&scenario.servers, &scenario.requests(), dispatcher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Jsq, LeastLoaded, Random, RoundRobin};
    use crate::model::LbRequest;

    fn uniform_servers(n: usize, speed: u32, cap: usize) -> Vec<ServerCfg> {
        (0..n).map(|_| ServerCfg::new(speed, cap)).collect()
    }

    /// Back-to-back equal requests onto one server: pure queueing math.
    #[test]
    fn single_server_fifo_math() {
        let servers = uniform_servers(1, 1, 16);
        // size 5 → 5 ms service; arrivals every 1 ms
        let reqs: Vec<LbRequest> =
            (0..4).map(|i| LbRequest { arrival_us: 1_000 * (i + 1), size: 5 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 4);
        assert_eq!(m.dropped, 0);
        // completions at 6, 11, 16, 21 ms → responses 5, 9, 13, 17 ms
        assert_eq!(m.sum_response_us, (5 + 9 + 13 + 17) * 1_000);
        assert_eq!(m.duration_us, 21_000);
        assert_eq!(m.busy_us[0], 20_000);
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let servers = uniform_servers(1, 1, 2);
        // 5 simultaneous-ish arrivals: 1 in service + 2 queued + 2 dropped
        let reqs: Vec<LbRequest> =
            (0..5).map(|i| LbRequest { arrival_us: 10 + i, size: 1_000 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 3);
        assert_eq!(m.dropped, 2);
        assert!(m.mean_slowdown() > DROP_SLOWDOWN_PENALTY * 2.0 / 5.0);
    }

    #[test]
    fn conservation_and_determinism() {
        let servers = vec![ServerCfg::new(4, 8), ServerCfg::new(2, 8), ServerCfg::new(1, 8)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 8_000,
        };
        let reqs = crate::workload::generate(&cfg, 42);
        let run_once = || run(&servers, &reqs, &mut Jsq::new());
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "simulation must be deterministic");
        assert_eq!(a.completed + a.dropped, a.offered);
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0);
        assert!(a.mean_response_us() > 0.0);
    }

    #[test]
    fn jsq_beats_random_on_a_uniform_fleet() {
        let servers = uniform_servers(8, 4, 32);
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 3_800.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 7);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let rnd = run(&servers, &reqs, &mut Random::new(3));
        assert!(
            jsq.mean_slowdown() < rnd.mean_slowdown() * 0.8,
            "jsq {} vs random {}",
            jsq.mean_slowdown(),
            rnd.mean_slowdown()
        );
    }

    #[test]
    fn speed_awareness_wins_on_a_heterogeneous_fleet() {
        // 2 fast + 4 slow: JSQ sends equal shares to unequal servers
        let mut servers = uniform_servers(2, 8, 32);
        servers.extend(uniform_servers(4, 1, 32));
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 2_200.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 11);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let ll = run(&servers, &reqs, &mut LeastLoaded::new());
        assert!(
            ll.mean_slowdown() < jsq.mean_slowdown(),
            "least-loaded {} vs jsq {}",
            ll.mean_slowdown(),
            jsq.mean_slowdown()
        );
    }

    #[test]
    fn ewma_latency_tracks_congestion() {
        // saturate one server and keep another idle; a latency-aware view
        // must separate them. Dispatch by fixed pattern: all to server 0.
        struct AllToZero;
        impl Dispatcher for AllToZero {
            fn name(&self) -> &str {
                "all-to-zero"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                0
            }
        }
        let servers = uniform_servers(2, 1, 512);
        let reqs: Vec<LbRequest> =
            (0..200).map(|i| LbRequest { arrival_us: i * 100, size: 10 }).collect();
        let m = run(&servers, &reqs, &mut AllToZero);
        assert_eq!(m.completed, 200);
        assert!(m.busy_us[1] == 0, "server 1 must stay idle");
        assert!(m.max_queue_seen > 50, "server 0 must build a deep queue");
    }

    #[test]
    #[should_panic(expected = "dispatcher returned server")]
    fn out_of_range_pick_panics() {
        struct Bad;
        impl Dispatcher for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                usize::MAX
            }
        }
        let servers = uniform_servers(1, 1, 4);
        let reqs = vec![LbRequest { arrival_us: 1, size: 1 }];
        run(&servers, &reqs, &mut Bad);
    }
}
