//! The discrete-event engine and the metrics the study scores.
//!
//! Two event sources drive the system: request arrivals (pre-generated,
//! time-ordered) and service completions (a min-heap). Completions at or
//! before an arrival instant are applied first, so the dispatcher always
//! sees up-to-date queues; ties inside the heap break on server index.
//! A run is a pure function of `(servers, requests, dispatcher)`.

use crate::dispatch::{DispatchView, Dispatcher, ServerView};
use crate::model::{LbRequest, ServerCfg};
use crate::scenario::Scenario;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Mean-slowdown penalty charged per dropped request — an SLO-style cost
/// standing in for the retry/timeout a real client would suffer. Large
/// enough that overflowing bounded queues can never pay off.
pub const DROP_SLOWDOWN_PENALTY: f64 = 100.0;

/// EWMA weight (1/8 new sample, like TCP's srtt) for per-server latency.
const EWMA_SHIFT: u32 = 3;

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LbMetrics {
    /// Requests offered to the dispatcher.
    pub offered: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests dropped at a full queue.
    pub dropped: u64,
    /// Sum of per-request slowdowns over completed requests.
    pub sum_slowdown: f64,
    /// Sum of response times over completed requests, µs.
    pub sum_response_us: u64,
    /// Busy time per server, µs (index-aligned with the fleet).
    pub busy_us: Vec<u64>,
    /// Virtual time of the last event, µs.
    pub duration_us: u64,
    /// Deepest queue observed on any server.
    pub max_queue_seen: usize,
}

impl LbMetrics {
    /// Mean slowdown over all offered requests; a completed request
    /// contributes `response / ideal` (ideal = its service time on an
    /// unloaded fastest server), a dropped one contributes
    /// [`DROP_SLOWDOWN_PENALTY`]. Lower is better; 1.0 is unreachable
    /// perfection.
    pub fn mean_slowdown(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.sum_slowdown + self.dropped as f64 * DROP_SLOWDOWN_PENALTY) / self.offered as f64
    }

    /// Mean response time over completed requests, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.sum_response_us as f64 / self.completed as f64
    }

    /// Fraction of offered requests dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Mean busy fraction across the fleet.
    pub fn utilization(&self) -> f64 {
        if self.duration_us == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_us.iter().sum();
        busy as f64 / (self.duration_us as f64 * self.busy_us.len() as f64)
    }
}

struct ServerState {
    cfg: ServerCfg,
    /// Waiting requests: (request index, service time on this server, µs).
    queue: VecDeque<(usize, u64)>,
    /// In-service request: (request index, finish time, µs).
    in_service: Option<(usize, u64)>,
    /// Sum of the queued requests' service times, µs (excludes in-service).
    queued_work_us: u64,
    ewma_latency_us: u64,
    busy_us: u64,
}

impl ServerState {
    fn view(&self, now: u64) -> ServerView {
        // residual work: what remains of the in-service request at `now`
        // (completions ≤ now have already been applied) plus the queue
        let in_service_left =
            self.in_service.map(|(_, finish)| finish.saturating_sub(now)).unwrap_or(0);
        ServerView {
            queue_len: self.queue.len(),
            inflight: self.queue.len() + usize::from(self.in_service.is_some()),
            speed: self.cfg.speed,
            ewma_latency_us: self.ewma_latency_us,
            work_left_us: self.queued_work_us + in_service_left,
        }
    }
}

/// Run `requests` (time-ordered) against `servers` under `dispatcher`.
///
/// # Panics
/// If the fleet is empty, requests are out of order, or the dispatcher
/// returns an out-of-range index.
pub fn run(
    servers: &[ServerCfg],
    requests: &[LbRequest],
    dispatcher: &mut dyn Dispatcher,
) -> LbMetrics {
    assert!(!servers.is_empty(), "need at least one server");
    let vmax = servers.iter().map(|s| s.speed).max().unwrap();
    let ideal = ServerCfg::new(vmax, usize::MAX >> 1);

    let mut fleet: Vec<ServerState> = servers
        .iter()
        .map(|&cfg| ServerState {
            cfg,
            queue: VecDeque::new(),
            in_service: None,
            queued_work_us: 0,
            ewma_latency_us: 0,
            busy_us: 0,
        })
        .collect();
    // completion agenda: (finish time, server index)
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

    let mut m = LbMetrics {
        offered: requests.len() as u64,
        completed: 0,
        dropped: 0,
        sum_slowdown: 0.0,
        sum_response_us: 0,
        busy_us: vec![0; servers.len()],
        duration_us: 0,
        max_queue_seen: 0,
    };

    let mut views: Vec<ServerView> = Vec::with_capacity(fleet.len());
    let mut last_arrival = 0u64;

    let complete_until = |t: u64,
                          fleet: &mut Vec<ServerState>,
                          completions: &mut BinaryHeap<Reverse<(u64, usize)>>,
                          m: &mut LbMetrics| {
        while let Some(&Reverse((finish, six))) = completions.peek() {
            if finish > t {
                break;
            }
            completions.pop();
            let s = &mut fleet[six];
            let (rix, _) = s.in_service.take().expect("completion without service");
            let req = &requests[rix];
            let response = finish - req.arrival_us;
            m.completed += 1;
            m.sum_response_us += response;
            m.sum_slowdown += response as f64 / ideal.service_us(req.size) as f64;
            m.duration_us = m.duration_us.max(finish);
            s.ewma_latency_us = if s.ewma_latency_us == 0 {
                response
            } else {
                s.ewma_latency_us - (s.ewma_latency_us >> EWMA_SHIFT) + (response >> EWMA_SHIFT)
            };
            if let Some((nrix, service)) = s.queue.pop_front() {
                s.queued_work_us -= service;
                s.in_service = Some((nrix, finish + service));
                s.busy_us += service;
                completions.push(Reverse((finish + service, six)));
            }
        }
    };

    for (rix, req) in requests.iter().enumerate() {
        assert!(req.arrival_us >= last_arrival, "requests must be time-ordered");
        last_arrival = req.arrival_us;
        complete_until(req.arrival_us, &mut fleet, &mut completions, &mut m);
        m.duration_us = m.duration_us.max(req.arrival_us);

        views.clear();
        views.extend(fleet.iter().map(|s| s.view(req.arrival_us)));
        let view = DispatchView { now_us: req.arrival_us, req_size: req.size, servers: &views };
        let six = dispatcher.pick(&view);
        assert!(six < fleet.len(), "dispatcher returned server {six} of {}", fleet.len());

        let s = &mut fleet[six];
        let service = s.cfg.service_us(req.size);
        if s.in_service.is_none() {
            s.in_service = Some((rix, req.arrival_us + service));
            s.busy_us += service;
            completions.push(Reverse((req.arrival_us + service, six)));
        } else if s.queue.len() < s.cfg.queue_cap {
            s.queue.push_back((rix, service));
            s.queued_work_us += service;
            m.max_queue_seen = m.max_queue_seen.max(s.queue.len());
        } else {
            m.dropped += 1;
        }
    }
    complete_until(u64::MAX, &mut fleet, &mut completions, &mut m);

    for (ix, s) in fleet.iter().enumerate() {
        m.busy_us[ix] = s.busy_us;
    }
    m
}

/// Run a [`Scenario`] end to end (generates its workload, then [`run`]s).
pub fn simulate<D: Dispatcher>(scenario: &Scenario, dispatcher: &mut D) -> LbMetrics {
    run(&scenario.servers, &scenario.requests(), dispatcher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{Jsq, LeastLoaded, Random, RoundRobin};
    use crate::model::LbRequest;

    fn uniform_servers(n: usize, speed: u32, cap: usize) -> Vec<ServerCfg> {
        (0..n).map(|_| ServerCfg::new(speed, cap)).collect()
    }

    /// Back-to-back equal requests onto one server: pure queueing math.
    #[test]
    fn single_server_fifo_math() {
        let servers = uniform_servers(1, 1, 16);
        // size 5 → 5 ms service; arrivals every 1 ms
        let reqs: Vec<LbRequest> =
            (0..4).map(|i| LbRequest { arrival_us: 1_000 * (i + 1), size: 5 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 4);
        assert_eq!(m.dropped, 0);
        // completions at 6, 11, 16, 21 ms → responses 5, 9, 13, 17 ms
        assert_eq!(m.sum_response_us, (5 + 9 + 13 + 17) * 1_000);
        assert_eq!(m.duration_us, 21_000);
        assert_eq!(m.busy_us[0], 20_000);
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let servers = uniform_servers(1, 1, 2);
        // 5 simultaneous-ish arrivals: 1 in service + 2 queued + 2 dropped
        let reqs: Vec<LbRequest> =
            (0..5).map(|i| LbRequest { arrival_us: 10 + i, size: 1_000 }).collect();
        let m = run(&servers, &reqs, &mut RoundRobin::new());
        assert_eq!(m.completed, 3);
        assert_eq!(m.dropped, 2);
        assert!(m.mean_slowdown() > DROP_SLOWDOWN_PENALTY * 2.0 / 5.0);
    }

    #[test]
    fn conservation_and_determinism() {
        let servers = vec![ServerCfg::new(4, 8), ServerCfg::new(2, 8), ServerCfg::new(1, 8)];
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 900.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 8_000,
        };
        let reqs = crate::workload::generate(&cfg, 42);
        let run_once = || run(&servers, &reqs, &mut Jsq::new());
        let (a, b) = (run_once(), run_once());
        assert_eq!(a, b, "simulation must be deterministic");
        assert_eq!(a.completed + a.dropped, a.offered);
        assert!(a.utilization() > 0.0 && a.utilization() <= 1.0);
        assert!(a.mean_response_us() > 0.0);
    }

    #[test]
    fn jsq_beats_random_on_a_uniform_fleet() {
        let servers = uniform_servers(8, 4, 32);
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 3_800.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 7);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let rnd = run(&servers, &reqs, &mut Random::new(3));
        assert!(
            jsq.mean_slowdown() < rnd.mean_slowdown() * 0.8,
            "jsq {} vs random {}",
            jsq.mean_slowdown(),
            rnd.mean_slowdown()
        );
    }

    #[test]
    fn speed_awareness_wins_on_a_heterogeneous_fleet() {
        // 2 fast + 4 slow: JSQ sends equal shares to unequal servers
        let mut servers = uniform_servers(2, 8, 32);
        servers.extend(uniform_servers(4, 1, 32));
        let cfg = crate::workload::WorkloadCfg {
            arrivals: crate::workload::ArrivalProcess::Poisson { rate_per_sec: 2_200.0 },
            sizes: crate::workload::BoundedPareto::web_default(),
            n: 20_000,
        };
        let reqs = crate::workload::generate(&cfg, 11);
        let jsq = run(&servers, &reqs, &mut Jsq::new());
        let ll = run(&servers, &reqs, &mut LeastLoaded::new());
        assert!(
            ll.mean_slowdown() < jsq.mean_slowdown(),
            "least-loaded {} vs jsq {}",
            ll.mean_slowdown(),
            jsq.mean_slowdown()
        );
    }

    #[test]
    fn ewma_latency_tracks_congestion() {
        // saturate one server and keep another idle; a latency-aware view
        // must separate them. Dispatch by fixed pattern: all to server 0.
        struct AllToZero;
        impl Dispatcher for AllToZero {
            fn name(&self) -> &str {
                "all-to-zero"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                0
            }
        }
        let servers = uniform_servers(2, 1, 512);
        let reqs: Vec<LbRequest> =
            (0..200).map(|i| LbRequest { arrival_us: i * 100, size: 10 }).collect();
        let m = run(&servers, &reqs, &mut AllToZero);
        assert_eq!(m.completed, 200);
        assert!(m.busy_us[1] == 0, "server 1 must stay idle");
        assert!(m.max_queue_seen > 50, "server 0 must build a deep queue");
    }

    #[test]
    fn work_left_tracks_residual_service_exactly() {
        // Single server, speed 1: size-5 requests take 5 ms each. Record
        // the work_left the dispatcher observes at every arrival.
        struct Recorder(Vec<u64>);
        impl Dispatcher for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn pick(&mut self, v: &DispatchView<'_>) -> usize {
                self.0.push(v.servers[0].work_left_us);
                0
            }
        }
        let servers = uniform_servers(1, 1, 16);
        // arrivals at 1, 2, 3, 4 ms; each needs 5 ms of service
        let reqs: Vec<LbRequest> =
            (0..4).map(|i| LbRequest { arrival_us: 1_000 * (i + 1), size: 5 }).collect();
        let mut rec = Recorder(Vec::new());
        let m = run(&servers, &reqs, &mut rec);
        // at t=1ms: idle (0). t=2ms: in-service started at 1ms, finishes at
        // 6ms → 4ms left. t=3ms: 3ms left + one queued 5ms. t=4ms: 2ms
        // left + two queued.
        assert_eq!(rec.0, vec![0, 4_000, 3_000 + 5_000, 2_000 + 10_000]);
        assert_eq!(m.completed, 4);
    }

    #[test]
    fn work_left_drains_back_to_zero_between_bursts() {
        struct Probe {
            last: u64,
        }
        impl Dispatcher for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn pick(&mut self, v: &DispatchView<'_>) -> usize {
                self.last = v.servers[0].work_left_us;
                0
            }
        }
        let servers = uniform_servers(1, 1, 16);
        // burst at 0..3ms, then a straggler long after the drain
        let mut reqs: Vec<LbRequest> =
            (0..3).map(|i| LbRequest { arrival_us: i * 1_000, size: 4 }).collect();
        reqs.push(LbRequest { arrival_us: 1_000_000, size: 4 });
        let mut p = Probe { last: u64::MAX };
        run(&servers, &reqs, &mut p);
        assert_eq!(p.last, 0, "work_left must read 0 once the backlog drained");
    }

    #[test]
    #[should_panic(expected = "dispatcher returned server")]
    fn out_of_range_pick_panics() {
        struct Bad;
        impl Dispatcher for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn pick(&mut self, _v: &DispatchView<'_>) -> usize {
                usize::MAX
            }
        }
        let servers = uniform_servers(1, 1, 4);
        let reqs = vec![LbRequest { arrival_us: 1, size: 1 }];
        run(&servers, &reqs, &mut Bad);
    }
}
