//! The dispatch boundary: what a policy sees, and the classical baselines.
//!
//! Each baseline is one of the man-made heuristics §2 of the paper says
//! operators accumulated for this tier; the study measures how far the
//! searched policies move past them.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Read-only snapshot of one server at dispatch time — exactly the
/// `Mode::Lb` feature surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerView {
    /// Requests waiting in the FIFO queue (excludes the one in service).
    pub queue_len: usize,
    /// Unfinished requests assigned (queued + in service).
    pub inflight: usize,
    /// Speed, work units per millisecond.
    pub speed: u32,
    /// EWMA of recent response times, µs (0 until the first completion).
    pub ewma_latency_us: u64,
    /// Residual work, µs of service time: remaining in-service time plus
    /// the service times of everything queued. The exact least-work-left
    /// signal (0 on an idle server).
    pub work_left_us: u64,
}

/// Everything a dispatcher may read for one decision.
#[derive(Debug, Clone, Copy)]
pub struct DispatchView<'a> {
    /// Virtual time of the arrival, µs.
    pub now_us: u64,
    /// Service demand of the request, work units.
    pub req_size: u64,
    /// Per-server snapshots, index-aligned with the fleet.
    pub servers: &'a [ServerView],
    /// Indices whose *event-driven* state (queue length, inflight, speed,
    /// EWMA latency) changed since the previous `pick` — the hook that lets
    /// incremental dispatchers rescore only what moved. `None` means
    /// "unknown, rescore everything" and is always safe; views built
    /// outside [`LbEngine`](crate::sim::LbEngine) may simply pass `None`.
    /// Time-derived signals (`now_us`, `work_left_us` on busy servers)
    /// drift without appearing here.
    pub dirty: Option<&'a [usize]>,
}

/// A dispatch policy: pick the server index for one request.
///
/// Implementations must be deterministic given their own state (randomized
/// policies own a seeded RNG). Returning an out-of-range index is a
/// simulator panic — the contract mirrors the cache engine's victim rule.
pub trait Dispatcher {
    /// Policy name for reports.
    fn name(&self) -> &str;
    /// Choose a server for the request described by `view`.
    fn pick(&mut self, view: &DispatchView<'_>) -> usize;
}

/// Round-robin: rotate through servers regardless of state.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let ix = self.next % view.servers.len();
        self.next = (self.next + 1) % view.servers.len();
        ix
    }
}

/// Uniform random server.
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    pub fn new(seed: u64) -> Self {
        Random { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Dispatcher for Random {
    fn name(&self) -> &str {
        "random"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        self.rng.random_range(0..view.servers.len())
    }
}

/// Join-shortest-queue: fewest inflight requests (ties to lower index).
#[derive(Debug, Clone, Default)]
pub struct Jsq;

impl Jsq {
    pub fn new() -> Self {
        Jsq
    }
}

impl Dispatcher for Jsq {
    fn name(&self) -> &str {
        "jsq"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        argmin(view.servers.iter().map(|s| s.inflight as u64))
    }
}

/// Least-loaded: smallest speed-normalized backlog estimate, including the
/// incoming request's own demand — the strongest classical baseline on
/// heterogeneous fleets.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        // backlog proxy: inflight count × mean-demand placeholder plus this
        // request, normalized by speed. Deliberately ignores the exact
        // `work_left_us` signal — this is the classical heuristic under the
        // information assumption a real L7 balancer historically had
        // (counts, not residual work); searched policies may use both
        argmin(
            view.servers
                .iter()
                .map(|s| (s.inflight as u64 + 1) * view.req_size.max(1) * 1_000 / s.speed as u64),
        )
    }
}

/// Power-of-two-choices: sample two distinct servers, take the less loaded
/// (by inflight), ties to the first sampled.
#[derive(Debug, Clone)]
pub struct PowerOfTwo {
    rng: StdRng,
}

impl PowerOfTwo {
    pub fn new(seed: u64) -> Self {
        PowerOfTwo { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Dispatcher for PowerOfTwo {
    fn name(&self) -> &str {
        "power-of-two"
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let n = view.servers.len();
        if n == 1 {
            return 0;
        }
        let a = self.rng.random_range(0..n);
        let mut b = self.rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        if view.servers[b].inflight < view.servers[a].inflight {
            b
        } else {
            a
        }
    }
}

/// Index of the minimum key, ties to the lowest index.
pub(crate) fn argmin<I: Iterator<Item = u64>>(keys: I) -> usize {
    let mut best = 0usize;
    let mut best_key = u64::MAX;
    for (ix, k) in keys.enumerate() {
        if k < best_key {
            best_key = k;
            best = ix;
        }
    }
    best
}

/// Names of all classical baselines, strongest-first ordering not implied.
pub fn lb_baseline_names() -> &'static [&'static str] {
    &["round-robin", "random", "jsq", "least-loaded", "power-of-two"]
}

/// Construct a baseline by name (randomized ones get a fixed seed so runs
/// stay reproducible).
pub fn by_name(name: &str) -> Option<Box<dyn Dispatcher>> {
    Some(match name {
        "round-robin" => Box::new(RoundRobin::new()),
        "random" => Box::new(Random::new(0x1b)),
        "jsq" => Box::new(Jsq::new()),
        "least-loaded" => Box::new(LeastLoaded::new()),
        "power-of-two" => Box::new(PowerOfTwo::new(0x2c)),
        _ => return None,
    })
}

impl Dispatcher for Box<dyn Dispatcher> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        (**self).pick(view)
    }
}

impl<D: Dispatcher + ?Sized> Dispatcher for &mut D {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        (**self).pick(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(servers: &[ServerView]) -> DispatchView<'_> {
        DispatchView { now_us: 0, req_size: 10, servers, dirty: None }
    }

    fn sv(queue_len: usize, inflight: usize, speed: u32) -> ServerView {
        ServerView { queue_len, inflight, speed, ewma_latency_us: 0, work_left_us: 0 }
    }

    #[test]
    fn round_robin_rotates() {
        let servers = [sv(0, 0, 4), sv(0, 0, 4), sv(0, 0, 4)];
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&view_of(&servers))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_prefers_short_queues_and_breaks_ties_low() {
        let servers = [sv(3, 4, 4), sv(0, 1, 4), sv(0, 1, 4)];
        assert_eq!(Jsq::new().pick(&view_of(&servers)), 1);
    }

    #[test]
    fn least_loaded_accounts_for_speed() {
        // same inflight, different speeds: the fast server wins
        let servers = [sv(2, 3, 1), sv(2, 3, 8)];
        assert_eq!(LeastLoaded::new().pick(&view_of(&servers)), 1);
        // a fast server with a deep backlog loses to an idle slow one
        let servers = [sv(20, 21, 8), sv(0, 0, 1)];
        assert_eq!(LeastLoaded::new().pick(&view_of(&servers)), 1);
    }

    #[test]
    fn power_of_two_picks_less_loaded_of_its_sample() {
        let servers = [sv(9, 10, 4), sv(0, 0, 4)];
        let mut p2 = PowerOfTwo::new(1);
        // with only two servers the sample is always {0, 1}
        for _ in 0..20 {
            assert_eq!(p2.pick(&view_of(&servers)), 1);
        }
    }

    #[test]
    fn random_covers_the_fleet_deterministically() {
        let servers = [sv(0, 0, 4); 4];
        let run = || {
            let mut r = Random::new(7);
            (0..100).map(|_| r.pick(&view_of(&servers))).collect::<Vec<_>>()
        };
        let picks = run();
        assert_eq!(picks, run(), "seeded random must be reproducible");
        for ix in 0..4 {
            assert!(picks.contains(&ix), "server {ix} never picked");
        }
    }

    #[test]
    fn registry_is_complete() {
        for name in lb_baseline_names() {
            let d = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(d.name(), *name);
        }
        assert!(by_name("nope").is_none());
    }
}
