//! Determinism and regression properties for the scenario presets and the
//! phased (mid-run shift) machinery:
//!
//! 1. **Preset determinism** — every preset's request stream is a pure
//!    function of the scenario (bit-identical across generations).
//! 2. **Diurnal generator properties** — arbitrary day/night parameters
//!    produce deterministic, time-ordered, exactly-n streams.
//! 3. **Phased-run determinism** — `run_phased` is a pure function of
//!    `(phases, dispatcher)` for every classical baseline.
//! 4. **Onset regression** — the slow-node onset visibly degrades the
//!    post-shift phase for queue-aware baselines (the signal the drift
//!    monitor keys on; the monitor-side onset pin lives in
//!    `crates/core/tests/adaptive_lb.rs`).

use policysmith_lbsim::workload::{generate, ArrivalProcess, BoundedPareto, WorkloadCfg};
use policysmith_lbsim::{by_name, lb_baseline_names, run_phased, scenario};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn preset_request_streams_are_bit_identical(preset_ix in 0usize..7) {
        let presets = scenario::all_presets();
        prop_assert_eq!(presets.len(), 7);
        let sc = &presets[preset_ix];
        prop_assert_eq!(sc.requests(), sc.requests(), "{}", &sc.name);
    }

    #[test]
    fn diurnal_workloads_are_deterministic_and_ordered(
        low_rate in 200u64..2_000,
        spread in 2u64..8,
        period_ms in 2u64..500,
        n in 1usize..4_000,
        seed in 0u64..1_000,
    ) {
        let cfg = WorkloadCfg {
            arrivals: ArrivalProcess::Diurnal {
                low_rate_per_sec: low_rate as f64,
                high_rate_per_sec: (low_rate * spread) as f64,
                period_us: period_ms * 1_000,
            },
            sizes: BoundedPareto::web_default(),
            n,
        };
        let stream = generate(&cfg, seed);
        prop_assert_eq!(&stream, &generate(&cfg, seed), "same seed, same stream");
        prop_assert_eq!(stream.len(), n);
        prop_assert!(stream.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        prop_assert!(stream.iter().all(|r| r.size >= 1));
    }

    #[test]
    fn phased_runs_are_deterministic_for_every_baseline(dispatcher_ix in 0usize..5) {
        let phases = scenario::slow_node_onset_phases();
        let name = lb_baseline_names()[dispatcher_ix];
        let run = || run_phased(&phases, &mut by_name(name).unwrap());
        prop_assert_eq!(run(), run(), "{}", name);
    }
}

/// The onset must be *visible*: for queue-aware baselines the post-shift
/// phase's resolved slowdown rises well past the healthy phase's — this is
/// the margin the drift monitor detects, pinned here against engine or
/// preset regressions.
#[test]
fn slow_node_onset_degrades_the_post_shift_phase() {
    let phases = scenario::slow_node_onset_phases();
    for name in ["jsq", "least-loaded"] {
        let p = run_phased(&phases, &mut by_name(name).unwrap());
        let (pre, post) = (p.phase_slowdown(0), p.phase_slowdown(1));
        assert!(
            post > pre * 1.35,
            "{name}: post-shift slowdown {post:.3} must exceed healthy {pre:.3} by ≥ 35%"
        );
        assert_eq!(p.combined.offered, p.per_phase[0].offered + p.per_phase[1].offered);
        assert_eq!(p.combined.completed + p.combined.dropped, p.combined.offered);
    }
}
