//! Whole-simulation differential tests for the sublinear dispatch engines.
//!
//! The batched full scan is the reference (itself pinned against the
//! scalar loop and the interpreter oracle in `policy.rs` unit tests and
//! `kbpf/tests/batch_differential.rs`). Here the two sublinear engines are
//! held to their contracts across **all seven scenario presets**:
//!
//! * the **argmin tree** is an exact engine — it must replay every preset
//!   decision-for-decision against the batched full scan, because dirty
//!   provenance from [`LbEngine`] plus tree eligibility (event-driven
//!   features only) make incremental rescoring lossless;
//! * **power-of-d** is an approximate engine — it must be bit-for-bit
//!   seed-deterministic, collapse to the full scan when `d >= n`, and land
//!   within a bounded slowdown band of native JSQ when sampling d=4.

use policysmith_dsl::{parse, Mode};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::dispatch::Jsq;
use policysmith_lbsim::{scenario, simulate, DispatchView, Dispatcher, ExprDispatcher};

/// Wraps any dispatcher and records its pick sequence.
struct Recording<D> {
    inner: D,
    picks: Vec<usize>,
}

impl<D> Recording<D> {
    fn new(inner: D) -> Self {
        Recording { inner, picks: Vec::new() }
    }
}

impl<D: Dispatcher> Dispatcher for Recording<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn pick(&mut self, view: &DispatchView<'_>) -> usize {
        let p = self.inner.pick(view);
        self.picks.push(p);
        p
    }
}

fn lb_policy(src: &str) -> CompiledPolicy {
    CompiledPolicy::compile(&parse(src).unwrap(), Mode::Lb).unwrap()
}

/// Tree-eligible scoring rules (event-driven features only): the JSQ
/// argmin, a speed-normalized inflight mix, and a latency/queue blend.
const TREE_EXPRS: &[&str] = &[
    "server.queue_len",
    "server.inflight * 1000 / server.speed + server.queue_len * 50",
    "server.ewma_latency / 100 + server.queue_len * 10",
];

#[test]
fn argmin_tree_replays_every_preset_decision_for_decision() {
    for sc in scenario::all_presets() {
        for src in TREE_EXPRS {
            let mut full = Recording::new(ExprDispatcher::new("ps-full", lb_policy(src)));
            let mut tree = Recording::new(ExprDispatcher::argmin_tree("ps-tree", lb_policy(src)));
            assert_eq!(tree.inner.scan_kind(), "argmin-tree", "{src} must be tree-eligible");
            let mf = simulate(&sc, &mut full);
            let mt = simulate(&sc, &mut tree);
            assert_eq!(
                full.picks, tree.picks,
                "argmin tree diverged from the full scan on {} with `{}`",
                sc.name, src
            );
            assert_eq!(mf.mean_slowdown().to_bits(), mt.mean_slowdown().to_bits());
            assert_eq!(mf.drop_fraction().to_bits(), mt.drop_fraction().to_bits());
            assert!(tree.inner.first_error().is_none(), "no runtime faults expected");
        }
    }
}

#[test]
fn argmin_tree_with_jsq_expr_matches_native_jsq() {
    // native JSQ scores `inflight` (queued + in service), ties to low index
    for sc in scenario::all_presets() {
        let mut tree =
            Recording::new(ExprDispatcher::argmin_tree("ps-tree", lb_policy("server.inflight")));
        let mut jsq = Recording::new(Jsq::new());
        simulate(&sc, &mut tree);
        simulate(&sc, &mut jsq);
        assert_eq!(tree.picks, jsq.picks, "JSQ-expr tree diverged from native JSQ on {}", sc.name);
    }
}

#[test]
fn power_of_d_is_seed_deterministic() {
    let sc = scenario::two_tier_fleet();
    let src = TREE_EXPRS[1];
    let mut a = Recording::new(ExprDispatcher::power_of_d("ps-d4", lb_policy(src), 4, 7));
    let mut b = Recording::new(ExprDispatcher::power_of_d("ps-d4", lb_policy(src), 4, 7));
    let ma = simulate(&sc, &mut a);
    let mb = simulate(&sc, &mut b);
    assert_eq!(a.picks, b.picks, "same seed must replay bit-for-bit");
    assert_eq!(ma.mean_slowdown().to_bits(), mb.mean_slowdown().to_bits());

    let mut c = Recording::new(ExprDispatcher::power_of_d("ps-d4", lb_policy(src), 4, 8));
    simulate(&sc, &mut c);
    assert_ne!(a.picks, c.picks, "a different seed samples different subsets");
}

#[test]
fn power_of_d_covering_the_fleet_equals_the_full_scan() {
    for sc in scenario::all_presets() {
        let n = sc.servers.len();
        let src = TREE_EXPRS[1];
        let mut full = Recording::new(ExprDispatcher::new("ps-full", lb_policy(src)));
        let mut wide =
            Recording::new(ExprDispatcher::power_of_d("ps-dn", lb_policy(src), n + 3, 7));
        simulate(&sc, &mut full);
        simulate(&sc, &mut wide);
        assert_eq!(
            full.picks, wide.picks,
            "d >= n must degenerate to the full scan on {}",
            sc.name
        );
    }
}

/// d=4 sampling of the JSQ rule stays within a bounded slowdown band of
/// native JSQ on every preset. The band is generous: power-of-d trades
/// decision quality for O(d) scoring, and the high-load presets
/// (correlated failures runs near 93% offered load) amplify the gap.
#[test]
fn power_of_d_stays_within_a_slowdown_band_of_jsq() {
    for sc in scenario::all_presets() {
        let mut pd = ExprDispatcher::power_of_d("ps-d4", lb_policy("server.inflight"), 4, 7);
        let mpd = simulate(&sc, &mut pd);
        let mjsq = simulate(&sc, &mut Jsq::new());
        let (a, b) = (mpd.mean_slowdown(), mjsq.mean_slowdown());
        assert!(a >= 1.0, "slowdown is bounded below by 1");
        assert!(
            a <= b * 3.0 + 0.5,
            "power-of-4 slowdown {a:.3} too far above JSQ {b:.3} on {}",
            sc.name
        );
    }
}

/// The legacy scalar loop and the batched default agree over whole
/// simulations, not just single picks.
#[test]
fn scalar_and_batched_agree_over_whole_simulations() {
    for sc in scenario::all_presets() {
        for src in TREE_EXPRS {
            let mut batched = Recording::new(ExprDispatcher::new("ps", lb_policy(src)));
            let mut scalar = Recording::new(ExprDispatcher::scalar("ps", lb_policy(src)));
            simulate(&sc, &mut batched);
            simulate(&sc, &mut scalar);
            assert_eq!(batched.picks, scalar.picks, "engines diverged on {}", sc.name);
        }
    }
}
