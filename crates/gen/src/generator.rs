//! The mock LLM itself: exemplar-conditioned candidate generation with
//! calibrated faults and stderr-driven repair.
//!
//! The [`Generator`] trait is the framework's LLM boundary: a real OpenAI
//! client would implement it with two API calls. [`MockLlm`] implements it
//! offline (substitution S1): generation samples a *strategy* per candidate
//! (fresh motif remix, exemplar mutation, exemplar crossover, or exemplar
//! plus an extra term), then optionally corrupts the result with one of the
//! paper's fault classes; repair pattern-matches the diagnostics exactly
//! the way a feedback-prompted LLM does, succeeding with class-dependent
//! probability.

use crate::faults::{inject, FaultMix};
use crate::motifs;
use crate::prompt::Prompt;
use crate::tokens::TokenLedger;
use policysmith_dsl::{parse, simplify, to_source, BinOp, Expr, Feature, Mode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tunables of the mock LLM.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    pub seed: u64,
    /// Probability a candidate is corrupted by a fault.
    pub p_fault: f64,
    /// Probability of a fresh motif remix even when exemplars exist
    /// (exploration pressure).
    pub p_explore: f64,
    /// Max motifs combined into a fresh candidate.
    pub max_motifs: usize,
    /// Fault class weights.
    pub fault_mix: FaultMix,
    /// Per-class repair success probabilities (float, div, ident, syntax).
    pub repair_skill: [f64; 4],
}

impl GenConfig {
    /// Calibrated for the cache study (§4.1.3: 92% of candidates compiled
    /// first-pass).
    pub fn cache_defaults(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            p_fault: 0.08,
            p_explore: 0.35,
            max_motifs: 5,
            fault_mix: FaultMix::cache(),
            repair_skill: [0.9, 0.6, 0.6, 0.25],
        }
    }

    /// Calibrated for the kernel study (§5.0.3: 63% passed the verifier
    /// first-try; +19% after stderr feedback).
    pub fn kernel_defaults(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            p_fault: 0.37,
            p_explore: 0.4,
            max_motifs: 3,
            fault_mix: FaultMix::kernel(),
            repair_skill: [0.85, 0.55, 0.5, 0.2],
        }
    }

    /// Calibrated for the load-balancing study: a userspace template like
    /// caching (no verifier), so fault rates mirror the cache mix.
    pub fn lb_defaults(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            p_fault: 0.10,
            p_explore: 0.4,
            max_motifs: 4,
            fault_mix: FaultMix::lb(),
            repair_skill: [0.9, 0.6, 0.6, 0.25],
        }
    }

    /// Calibrated for the AQM study: a userspace host inside the event
    /// loop. Fault rates mirror the lb mix; candidates stay small (a
    /// verdict is a sum of a few gates, not a deep formula).
    pub fn aqm_defaults(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            p_fault: 0.10,
            p_explore: 0.4,
            max_motifs: 4,
            fault_mix: FaultMix::aqm(),
            repair_skill: [0.9, 0.6, 0.6, 0.25],
        }
    }
}

/// Why a generation request failed — the error surface a real LLM client
/// maps API failures onto (rate limits, 5xx, connection resets, request
/// deadlines). [`MockLlm`] never fails; [`crate::flaky::FlakyGen`] injects
/// these deliberately so the search's retry/watchdog path is exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The backend refused or errored before producing anything.
    Unavailable(String),
    /// The backend stalled past the client-side deadline.
    Timeout(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Unavailable(why) => write!(f, "generator unavailable: {why}"),
            GenError::Timeout(why) => write!(f, "generator timed out: {why}"),
        }
    }
}

impl std::error::Error for GenError {}

/// The framework's LLM boundary (§3's `Generator`).
pub trait Generator {
    /// Produce `n` candidate sources for the prompt.
    fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String>;
    /// Fallible generation surface. The search loop calls this; the default
    /// wraps the infallible [`Generator::generate`] in `Ok`, so existing
    /// generators keep working unchanged. Implementations backed by a real
    /// network client (or [`crate::flaky::FlakyGen`]) override it to report
    /// backend failures instead of silently returning an empty batch.
    fn try_generate(&mut self, prompt: &Prompt, n: usize) -> Result<Vec<String>, GenError> {
        Ok(self.generate(prompt, n))
    }
    /// Attempt to repair a rejected candidate given its diagnostics.
    fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String>;
    /// Token/cost accounting so far.
    fn ledger(&self) -> &TokenLedger;
}

/// Offline LLM stand-in. Deterministic per seed and call sequence.
pub struct MockLlm {
    cfg: GenConfig,
    rng: StdRng,
    ledger: TokenLedger,
}

impl MockLlm {
    /// New generator with the given configuration.
    pub fn new(cfg: GenConfig) -> Self {
        MockLlm { rng: StdRng::seed_from_u64(cfg.seed), cfg, ledger: TokenLedger::default() }
    }

    /// Sum 2..=max_motifs draws from a motif library — the additive remix
    /// shape shared by the userspace templates (cache priority, lb score).
    fn additive_remix(&mut self, lib: &[fn(&mut StdRng) -> Expr]) -> Expr {
        let k = self.rng.random_range(2..=self.cfg.max_motifs.max(2));
        let mut expr: Option<Expr> = None;
        for _ in 0..k {
            let m = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
            expr = Some(match expr {
                Some(acc) => Expr::bin(BinOp::Add, acc, m),
                None => m,
            });
        }
        expr.unwrap()
    }

    fn fresh_remix(&mut self, mode: Mode) -> Expr {
        match mode {
            Mode::Cache => self.additive_remix(&motifs::cache_motifs()),
            Mode::Lb => self.additive_remix(&motifs::lb_motifs()),
            Mode::Aqm => self.additive_remix(&motifs::aqm_motifs()),
            Mode::Kernel => {
                // canonical kernel shape: if(loss, backoff, growth-side)
                let growth_lib = motifs::cc_motifs();
                let mut growth =
                    growth_lib[self.rng.random_range(0..growth_lib.len())](&mut self.rng);
                if self.rng.random_bool(0.3) {
                    // nest a second gate
                    let g2 = growth_lib[self.rng.random_range(0..growth_lib.len())](&mut self.rng);
                    growth = Expr::ite(feat_gate(&mut self.rng), growth, g2);
                }
                let backoff = motifs::cc_backoff(&mut self.rng);
                let body = Expr::ite(Expr::Feat(Feature::LossEvent), backoff, growth);
                if self.rng.random_bool(0.25) {
                    Expr::Clamp(
                        Box::new(body),
                        Box::new(Expr::Int(2)),
                        Box::new(Expr::Int(self.rng.random_range(128..4_096))),
                    )
                } else {
                    body
                }
            }
        }
    }

    fn mutate(&mut self, base: &Expr, mode: Mode) -> Expr {
        let n = base.size();
        let ix = self.rng.random_range(0..n);
        match self.rng.random_range(0..4u8) {
            0 => {
                // constant perturbation
                if let Some(Expr::Int(v)) = base.get_subexpr(ix) {
                    let nv = match self.rng.random_range(0..4u8) {
                        0 => v.saturating_mul(2),
                        1 => v / 2,
                        2 => v.saturating_add(self.rng.random_range(1..10)),
                        _ => v.saturating_sub(self.rng.random_range(1..10)),
                    };
                    return base.replace_subexpr(ix, &Expr::Int(nv));
                }
                self.mutate_fallback(base, mode)
            }
            1 => {
                // feature swap within the mode's catalog
                if let Some(Expr::Feat(_)) = base.get_subexpr(ix) {
                    let cat = Feature::catalog(mode);
                    let f = cat[self.rng.random_range(0..cat.len())];
                    return base.replace_subexpr(ix, &Expr::Feat(f));
                }
                self.mutate_fallback(base, mode)
            }
            2 => {
                // graft a fresh motif in place of a subtree
                let lib = match mode {
                    Mode::Cache => motifs::cache_motifs(),
                    Mode::Kernel => motifs::cc_motifs(),
                    Mode::Lb => motifs::lb_motifs(),
                    Mode::Aqm => motifs::aqm_motifs(),
                };
                let motif = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
                base.replace_subexpr(ix, &motif)
            }
            _ => {
                // add a term at the root (userspace) / wrap in a gate (kernel)
                match mode {
                    Mode::Cache => {
                        let lib = motifs::cache_motifs();
                        let m = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
                        Expr::bin(BinOp::Add, base.clone(), m)
                    }
                    Mode::Lb => {
                        let lib = motifs::lb_motifs();
                        let m = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
                        Expr::bin(BinOp::Add, base.clone(), m)
                    }
                    Mode::Aqm => {
                        let lib = motifs::aqm_motifs();
                        let m = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
                        Expr::bin(BinOp::Add, base.clone(), m)
                    }
                    Mode::Kernel => {
                        let lib = motifs::cc_motifs();
                        let alt = lib[self.rng.random_range(0..lib.len())](&mut self.rng);
                        Expr::ite(feat_gate(&mut self.rng), base.clone(), alt)
                    }
                }
            }
        }
    }

    fn mutate_fallback(&mut self, base: &Expr, mode: Mode) -> Expr {
        let n = base.size();
        let ix = self.rng.random_range(0..n);
        let cat = Feature::catalog(mode);
        let f = cat[self.rng.random_range(0..cat.len())];
        base.replace_subexpr(ix, &Expr::Feat(f))
    }

    fn crossover(&mut self, a: &Expr, b: &Expr) -> Expr {
        let ia = self.rng.random_range(0..a.size());
        let ib = self.rng.random_range(0..b.size());
        let donor = b.get_subexpr(ib).cloned().unwrap_or(Expr::Int(1));
        a.replace_subexpr(ia, &donor)
    }

    /// Parse the prompt's exemplars (they were accepted before, so this
    /// should not fail; fall back to remixing if it somehow does).
    fn parsed_exemplars(&self, prompt: &Prompt) -> Vec<Expr> {
        prompt.exemplars.iter().filter_map(|e| parse(&e.source).ok()).collect()
    }
}

/// A random boolean gate over kernel features, used by the kernel remixer
/// to nest growth strategies.
fn feat_gate(rng: &mut StdRng) -> Expr {
    {
        use policysmith_dsl::CmpOp;
        match rng.random_range(0..3u8) {
            0 => Expr::cmp(CmpOp::Lt, Expr::Feat(Feature::Cwnd), Expr::Feat(Feature::Ssthresh)),
            1 => Expr::cmp(
                CmpOp::Gt,
                Expr::Feat(Feature::SrttUs),
                Expr::bin(
                    BinOp::Add,
                    Expr::Feat(Feature::MinRttUs),
                    Expr::Int(rng.random_range(2_000..20_000)),
                ),
            ),
            _ => Expr::cmp(CmpOp::Gt, Expr::Feat(Feature::HistLoss(0)), Expr::Int(0)),
        }
    }
}

impl Generator for MockLlm {
    fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String> {
        let exemplars = self.parsed_exemplars(prompt);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let expr = if exemplars.is_empty() || self.rng.random_bool(self.cfg.p_explore) {
                self.fresh_remix(prompt.mode)
            } else if exemplars.len() >= 2 && self.rng.random_bool(0.3) {
                let a = &exemplars[self.rng.random_range(0..exemplars.len())];
                let b = &exemplars[self.rng.random_range(0..exemplars.len())];
                self.crossover(a, b)
            } else {
                let base = &exemplars[self.rng.random_range(0..exemplars.len())];
                self.mutate(base, prompt.mode)
            };
            let expr = simplify(&expr);
            let src = if self.rng.random_bool(self.cfg.p_fault) {
                let kind = self.cfg.fault_mix.sample(&mut self.rng);
                inject(kind, &expr, prompt.mode, &mut self.rng)
            } else {
                to_source(&expr)
            };
            out.push(src);
        }
        self.ledger.record(&prompt.render(), &out);
        out
    }

    fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String> {
        let mut p = prompt.clone();
        p.feedback = Some(stderr.to_string());
        let rendered = p.render();
        let err = stderr.to_lowercase();

        let fixed: Option<String> = if err.contains("float") {
            if !self.rng.random_bool(self.cfg.repair_skill[0]) {
                None
            } else {
                // round every float literal to an integer
                parse_with_floats_rounded(source)
            }
        } else if err.contains("divisor") || err.contains("division") {
            if !self.rng.random_bool(self.cfg.repair_skill[1]) {
                None
            } else {
                parse(source).ok().map(|e| to_source(&guard_divisions(&e)))
            }
        } else if err.contains("unknown identifier") {
            if !self.rng.random_bool(self.cfg.repair_skill[2]) {
                None
            } else {
                replace_unknown_ident(source, prompt.mode, &mut self.rng)
            }
        } else {
            // syntax and the rest: try closing parens
            if !self.rng.random_bool(self.cfg.repair_skill[3]) {
                None
            } else {
                balance_parens(source)
            }
        };

        self.ledger.record(&rendered, fixed.as_slice());
        fixed
    }

    fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }
}

/// Parse while tolerating float literals, then round them to integers.
fn parse_with_floats_rounded(src: &str) -> Option<String> {
    let e = parse(src).ok()?;
    fn round(e: &Expr) -> Expr {
        match e {
            Expr::Float(v) => Expr::Int((*v).round().max(1.0) as i64),
            Expr::Int(_) | Expr::Feat(_) => e.clone(),
            Expr::Neg(a) => Expr::Neg(Box::new(round(a))),
            Expr::Not(a) => Expr::Not(Box::new(round(a))),
            Expr::Abs(a) => Expr::Abs(Box::new(round(a))),
            Expr::Bin(op, a, b) => Expr::bin(*op, round(a), round(b)),
            Expr::Cmp(op, a, b) => Expr::cmp(*op, round(a), round(b)),
            Expr::If(a, b, c) => Expr::ite(round(a), round(b), round(c)),
            Expr::Clamp(a, b, c) => {
                Expr::Clamp(Box::new(round(a)), Box::new(round(b)), Box::new(round(c)))
            }
        }
    }
    Some(to_source(&round(&e)))
}

/// Wrap every not-provably-nonzero divisor in `max(.., 1)` — the idiom the
/// verifier's diagnostics teach (§5.0.3).
pub fn guard_divisions(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Feat(_) => e.clone(),
        Expr::Neg(a) => Expr::Neg(Box::new(guard_divisions(a))),
        Expr::Not(a) => Expr::Not(Box::new(guard_divisions(a))),
        Expr::Abs(a) => Expr::Abs(Box::new(guard_divisions(a))),
        Expr::Bin(op @ (BinOp::Div | BinOp::Rem), a, b) => {
            let a = guard_divisions(a);
            let b = guard_divisions(b);
            let b = if policysmith_dsl::check::divisor_nonzero(&b) {
                b
            } else {
                Expr::bin(BinOp::Max, b, Expr::Int(1))
            };
            Expr::bin(*op, a, b)
        }
        Expr::Bin(op, a, b) => Expr::bin(*op, guard_divisions(a), guard_divisions(b)),
        Expr::Cmp(op, a, b) => Expr::cmp(*op, guard_divisions(a), guard_divisions(b)),
        Expr::If(a, b, c) => Expr::ite(guard_divisions(a), guard_divisions(b), guard_divisions(c)),
        Expr::Clamp(a, b, c) => Expr::Clamp(
            Box::new(guard_divisions(a)),
            Box::new(guard_divisions(b)),
            Box::new(guard_divisions(c)),
        ),
    }
}

fn replace_unknown_ident(src: &str, mode: Mode, rng: &mut StdRng) -> Option<String> {
    // the fakes the injector uses, plus a couple of generic shapes
    let fakes = [
        "obj.frequency",
        "obj.weight",
        "cache.pressure",
        "hist.age",
        "obj.ttl",
        "rtt_var",
        "bytes_acked",
        "queue_len",
        "cwnd_max",
        "pacing_rate",
    ];
    let cat = Feature::catalog(mode);
    let replacement = cat[rng.random_range(0..cat.len())].name();
    for fake in fakes {
        if src.contains(fake) {
            let fixed = src.replace(fake, &replacement);
            if parse(&fixed).is_ok() {
                return Some(fixed);
            }
        }
    }
    None
}

fn balance_parens(src: &str) -> Option<String> {
    let opens = src.matches('(').count();
    let closes = src.matches(')').count();
    if opens > closes {
        let fixed = format!("{src}{}", ")".repeat(opens - closes));
        if parse(&fixed).is_ok() {
            return Some(fixed);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{check, Mode};

    fn count_valid(mode: Mode, cfg: GenConfig, n: usize) -> usize {
        let mut llm = MockLlm::new(cfg);
        let prompt = Prompt::new(mode);
        llm.generate(&prompt, n)
            .iter()
            .filter(|s| parse(s).map(|e| check(&e, mode).is_ok()).unwrap_or(false))
            .count()
    }

    #[test]
    fn cache_first_pass_rate_near_92_percent() {
        let valid = count_valid(Mode::Cache, GenConfig::cache_defaults(1), 1_000);
        let rate = valid as f64 / 1_000.0;
        assert!((0.86..=0.97).contains(&rate), "cache first-pass rate {rate}");
    }

    #[test]
    fn lb_first_pass_rate_matches_calibration() {
        let valid = count_valid(Mode::Lb, GenConfig::lb_defaults(2), 1_000);
        let rate = valid as f64 / 1_000.0;
        assert!((0.84..=0.97).contains(&rate), "lb first-pass rate {rate}");
    }

    #[test]
    fn lb_candidates_read_server_state() {
        let mut llm = MockLlm::new(GenConfig { p_fault: 0.0, ..GenConfig::lb_defaults(8) });
        let batch = llm.generate(&Prompt::new(Mode::Lb), 50);
        let with_server = batch.iter().filter(|s| s.contains("server.")).count();
        assert!(with_server > 40, "lb candidates should read server features: {with_server}/50");
        for s in &batch {
            let e = parse(s).unwrap_or_else(|e| panic!("fault-free lb candidate: {s}: {e}"));
            check(&e, Mode::Lb).unwrap_or_else(|e| panic!("lb candidate failed check: {s}: {e}"));
        }
    }

    #[test]
    fn aqm_first_pass_rate_matches_calibration() {
        let valid = count_valid(Mode::Aqm, GenConfig::aqm_defaults(5), 1_000);
        let rate = valid as f64 / 1_000.0;
        assert!((0.84..=0.97).contains(&rate), "aqm first-pass rate {rate}");
    }

    #[test]
    fn aqm_candidates_read_queue_state() {
        let mut llm = MockLlm::new(GenConfig { p_fault: 0.0, ..GenConfig::aqm_defaults(9) });
        let batch = llm.generate(&Prompt::new(Mode::Aqm), 50);
        let with_queue =
            batch.iter().filter(|s| s.contains("q.") || s.contains("pkt.sojourn")).count();
        assert!(with_queue > 40, "aqm candidates should read queue features: {with_queue}/50");
        for s in &batch {
            let e = parse(s).unwrap_or_else(|e| panic!("fault-free aqm candidate: {s}: {e}"));
            check(&e, Mode::Aqm).unwrap_or_else(|e| panic!("aqm candidate failed check: {s}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(42));
            llm.generate(&Prompt::new(Mode::Cache), 20)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn exemplars_steer_generation() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(7));
        let prompt = Prompt::new(Mode::Cache).with_exemplars(vec![crate::Exemplar {
            source: "obj.count * 123 - obj.age / 456".into(),
            score: 0.3,
        }]);
        let batch = llm.generate(&prompt, 40);
        // a meaningful share of candidates must descend from the exemplar
        let descendants = batch.iter().filter(|s| s.contains("123") || s.contains("456")).count();
        assert!(descendants >= 5, "only {descendants} descendants in {batch:?}");
    }

    #[test]
    fn repair_fixes_floats() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(3));
        let prompt = Prompt::new(Mode::Cache);
        let fixed = loop {
            // repair is stochastic; retry until the skill roll succeeds
            if let Some(f) =
                llm.repair(&prompt, "obj.count * 1.5", "error: floating-point literal `1.5`")
            {
                break f;
            }
        };
        let e = parse(&fixed).unwrap();
        assert!(check(&e, Mode::Cache).is_ok());
        assert!(!e.contains_float());
    }

    #[test]
    fn repair_guards_divisions() {
        let mut llm = MockLlm::new(GenConfig::kernel_defaults(4));
        let prompt = Prompt::new(Mode::Kernel);
        let fixed = loop {
            if let Some(f) = llm.repair(
                &prompt,
                "cwnd / inflight",
                "verifier: insn 3: R2 range [0, 16777216] includes 0, not allowed as divisor",
            ) {
                break f;
            }
        };
        assert!(fixed.contains("max(inflight, 1)"), "{fixed}");
    }

    #[test]
    fn guard_divisions_is_idempotent_on_safe_code() {
        let e = parse("cwnd / max(inflight, 1) + acked / mss").unwrap();
        assert_eq!(guard_divisions(&e), e);
    }

    #[test]
    fn tokens_metered_on_every_call() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(5));
        let prompt = Prompt::new(Mode::Cache);
        llm.generate(&prompt, 25);
        let after_gen = *llm.ledger();
        assert!(after_gen.input_tokens > 100, "prompt must be metered");
        assert!(after_gen.output_tokens > 25, "completions must be metered");
        llm.repair(&prompt, "obj.count * 1.5", "error: floating-point literal");
        assert!(llm.ledger().requests > after_gen.requests);
    }

    #[test]
    fn kernel_remixes_have_loss_structure() {
        let mut llm = MockLlm::new(GenConfig { p_fault: 0.0, ..GenConfig::kernel_defaults(6) });
        let batch = llm.generate(&Prompt::new(Mode::Kernel), 50);
        let with_loss = batch.iter().filter(|s| s.contains("loss")).count();
        assert!(with_loss > 35, "kernel candidates should branch on loss: {with_loss}/50");
        for s in &batch {
            parse(s).unwrap_or_else(|e| panic!("fault-free candidate failed to parse: {s}: {e}"));
        }
    }
}
