//! Token metering — the substrate of the §4.2.6 cost experiment.
//!
//! The paper reports "800k input tokens and 300k output tokens with the
//! GPT-4o-mini model … approximately USD $7" for eight runs. Our mock LLM
//! meters the same quantities: rendered prompt text on input, candidate
//! source on output, at the ~4-chars-per-token heuristic, priced at
//! GPT-4o-mini list prices.

/// GPT-4o-mini pricing, USD per million tokens (as of the paper's writing).
pub const INPUT_PRICE_PER_M: f64 = 0.15;
pub const OUTPUT_PRICE_PER_M: f64 = 0.60;

/// Approximate tokens in `text` (≈ 4 characters / token, minimum 1).
pub fn approx_tokens(text: &str) -> u64 {
    (text.len() as u64 / 4).max(1)
}

/// Cumulative token/cost ledger for one search.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TokenLedger {
    pub input_tokens: u64,
    pub output_tokens: u64,
    pub requests: u64,
}

impl TokenLedger {
    /// Meter one generation call.
    pub fn record(&mut self, prompt_text: &str, completions: &[String]) {
        self.requests += 1;
        self.input_tokens += approx_tokens(prompt_text);
        for c in completions {
            self.output_tokens += approx_tokens(c);
        }
    }

    /// Merge another ledger into this one.
    pub fn absorb(&mut self, other: &TokenLedger) {
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
        self.requests += other.requests;
    }

    /// Estimated API cost in USD.
    pub fn cost_usd(&self) -> f64 {
        self.input_tokens as f64 / 1e6 * INPUT_PRICE_PER_M
            + self.output_tokens as f64 / 1e6 * OUTPUT_PRICE_PER_M
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_estimate() {
        assert_eq!(approx_tokens(""), 1);
        assert_eq!(approx_tokens("abcdefgh"), 2);
    }

    #[test]
    fn ledger_accumulates_and_prices() {
        let mut l = TokenLedger::default();
        l.record(&"x".repeat(4_000), &["y".repeat(400), "z".repeat(400)]);
        assert_eq!(l.input_tokens, 1_000);
        assert_eq!(l.output_tokens, 200);
        assert_eq!(l.requests, 1);
        let expected = 1_000.0 / 1e6 * INPUT_PRICE_PER_M + 200.0 / 1e6 * OUTPUT_PRICE_PER_M;
        assert!((l.cost_usd() - expected).abs() < 1e-12);

        let mut total = TokenLedger::default();
        total.absorb(&l);
        total.absorb(&l);
        assert_eq!(total.input_tokens, 2_000);
        assert_eq!(total.requests, 2);
    }
}
