//! A fault-injecting `Generator` wrapper — the *transport*-level analogue
//! of [`crate::faults`].
//!
//! `faults` models the LLM hallucinating inside an otherwise successful
//! response; [`FlakyGen`] models the request itself misbehaving: the
//! backend returning 5xx/rate-limit errors, stalling past the client
//! deadline, or answering with garbage that is not even candidate-shaped.
//! The serving runtime's retry/backoff + watchdog layer is written against
//! exactly these failures, and the chaos harness drives them
//! deterministically per seed.

use crate::generator::{GenError, Generator};
use crate::prompt::Prompt;
use crate::tokens::TokenLedger;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// Seed-driven misbehavior rates for [`FlakyGen`]. All probabilities are
/// per `try_generate` call; the rolls are drawn from a dedicated `StdRng`
/// so the same seed yields the same failure sequence regardless of what
/// the wrapped generator does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyConfig {
    pub seed: u64,
    /// Probability the whole request fails outright (rate limit / 5xx).
    pub p_error: f64,
    /// Probability the response is a batch of non-candidate garbage text.
    pub p_garbage: f64,
    /// Probability the backend stalls for [`FlakyConfig::stall`] before
    /// responding.
    pub p_stall: f64,
    /// How long a stall lasts. Stalls longer than
    /// [`FlakyConfig::client_timeout`] surface as [`GenError::Timeout`]
    /// after sleeping only the timeout — the client hung up first.
    pub stall: Duration,
    /// The client-side request deadline.
    pub client_timeout: Duration,
}

impl FlakyConfig {
    /// An intermittently unreliable backend: occasional errors, garbage,
    /// and sub-deadline stalls. Retries are expected to win.
    pub fn flaky(seed: u64) -> FlakyConfig {
        FlakyConfig {
            seed,
            p_error: 0.3,
            p_garbage: 0.2,
            p_stall: 0.2,
            stall: Duration::from_millis(5),
            client_timeout: Duration::from_millis(250),
        }
    }

    /// A dead backend: every request fails. Retries cannot win; the
    /// watchdog's give-up path is the only way out.
    pub fn outage(seed: u64) -> FlakyConfig {
        FlakyConfig {
            seed,
            p_error: 1.0,
            p_garbage: 0.0,
            p_stall: 0.0,
            stall: Duration::ZERO,
            client_timeout: Duration::from_millis(250),
        }
    }

    /// A healthy backend — [`FlakyGen`] becomes a transparent wrapper.
    /// Useful as the no-fault arm of a chaos plan.
    pub fn none(seed: u64) -> FlakyConfig {
        FlakyConfig {
            seed,
            p_error: 0.0,
            p_garbage: 0.0,
            p_stall: 0.0,
            stall: Duration::ZERO,
            client_timeout: Duration::from_secs(1),
        }
    }
}

/// Counts of injected failures, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlakyStats {
    pub errors: u64,
    pub garbage_batches: u64,
    pub stalls: u64,
    pub timeouts: u64,
}

/// Wraps any [`Generator`] with deterministic transport-level faults.
pub struct FlakyGen<G: Generator> {
    inner: G,
    cfg: FlakyConfig,
    rng: StdRng,
    stats: FlakyStats,
}

impl<G: Generator> FlakyGen<G> {
    pub fn new(inner: G, cfg: FlakyConfig) -> Self {
        FlakyGen { inner, cfg, rng: StdRng::seed_from_u64(cfg.seed), stats: FlakyStats::default() }
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FlakyStats {
        self.stats
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p)
    }
}

impl<G: Generator> Generator for FlakyGen<G> {
    /// Infallible surface: failures degrade to an empty batch (a caller
    /// that cannot observe errors sees "the LLM produced nothing usable").
    fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String> {
        self.try_generate(prompt, n).unwrap_or_default()
    }

    fn try_generate(&mut self, prompt: &Prompt, n: usize) -> Result<Vec<String>, GenError> {
        if self.roll(self.cfg.p_error) {
            self.stats.errors += 1;
            return Err(GenError::Unavailable("injected backend error (503)".into()));
        }
        if self.roll(self.cfg.p_stall) {
            self.stats.stalls += 1;
            let timeout = self.cfg.client_timeout;
            if self.cfg.stall > timeout {
                // the backend would answer eventually, but the client's
                // deadline fires first — sleep only the deadline
                std::thread::sleep(timeout);
                self.stats.timeouts += 1;
                return Err(GenError::Timeout(format!(
                    "injected stall exceeded the {}ms client deadline",
                    timeout.as_millis()
                )));
            }
            std::thread::sleep(self.cfg.stall);
        }
        if self.roll(self.cfg.p_garbage) {
            self.stats.garbage_batches += 1;
            // candidate-shaped only in the loosest sense: none of these
            // survive `parse`, so the whole round yields zero candidates
            return Ok((0..n)
                .map(|i| format!("I'm sorry, as a large language model ({i}) (((",))
                .collect());
        }
        self.inner.try_generate(prompt, n)
    }

    fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String> {
        // repair rides the same flaky transport: a failed round-trip is
        // indistinguishable from "the model had no fix"
        if self.roll(self.cfg.p_error) {
            self.stats.errors += 1;
            return None;
        }
        self.inner.repair(prompt, source, stderr)
    }

    fn ledger(&self) -> &TokenLedger {
        self.inner.ledger()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GenConfig, MockLlm};
    use policysmith_dsl::{parse, Mode};

    fn prompt() -> Prompt {
        Prompt::new(Mode::Cache)
    }

    fn mock(seed: u64) -> MockLlm {
        MockLlm::new(GenConfig::cache_defaults(seed))
    }

    #[test]
    fn healthy_config_is_transparent() {
        let mut plain = mock(7);
        let mut wrapped = FlakyGen::new(mock(7), FlakyConfig::none(7));
        let a = plain.generate(&prompt(), 6);
        let b = wrapped.try_generate(&prompt(), 6).unwrap();
        assert_eq!(a, b, "p=0 wrapper must not perturb the stream");
        assert_eq!(wrapped.stats(), FlakyStats::default());
    }

    #[test]
    fn outage_always_errors_and_is_deterministic() {
        let mut g = FlakyGen::new(mock(1), FlakyConfig::outage(42));
        for _ in 0..10 {
            assert!(matches!(g.try_generate(&prompt(), 4), Err(GenError::Unavailable(_))));
        }
        assert_eq!(g.stats().errors, 10);
        // the infallible surface degrades to an empty batch
        assert!(g.generate(&prompt(), 4).is_empty());
    }

    #[test]
    fn same_seed_same_failure_sequence() {
        let run = |seed| {
            let mut g = FlakyGen::new(mock(3), FlakyConfig::flaky(seed));
            (0..40).map(|_| g.try_generate(&prompt(), 2).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should fail differently");
    }

    #[test]
    fn garbage_batches_never_parse() {
        let cfg =
            FlakyConfig { p_error: 0.0, p_stall: 0.0, p_garbage: 1.0, ..FlakyConfig::flaky(5) };
        let mut g = FlakyGen::new(mock(2), cfg);
        let batch = g.try_generate(&prompt(), 5).unwrap();
        assert_eq!(batch.len(), 5);
        for src in &batch {
            assert!(parse(src).is_err(), "garbage unexpectedly parsed: {src}");
        }
        assert_eq!(g.stats().garbage_batches, 1);
    }

    #[test]
    fn stall_past_deadline_times_out() {
        let cfg = FlakyConfig {
            p_error: 0.0,
            p_garbage: 0.0,
            p_stall: 1.0,
            stall: Duration::from_millis(50),
            client_timeout: Duration::from_millis(1),
            seed: 11,
        };
        let mut g = FlakyGen::new(mock(2), cfg);
        let t0 = std::time::Instant::now();
        assert!(matches!(g.try_generate(&prompt(), 2), Err(GenError::Timeout(_))));
        assert!(t0.elapsed() < Duration::from_millis(40), "client must not wait out the stall");
        assert_eq!(g.stats().timeouts, 1);
    }
}
