//! # policysmith-gen — the mock-LLM candidate generator
//!
//! Substitution S1 in DESIGN.md: the paper drives its search with GPT-4o
//! mini; this crate provides an offline, deterministic stand-in exposing
//! the same interface a real LLM client would implement — the framework's
//! `Generator` role (§3 of the paper).
//!
//! What makes it "LLM-like" rather than a plain mutation engine:
//!
//! * **Motif remixing** ([`motifs`]): candidates are assembled from a
//!   library of domain idioms the caching/CC literature keeps reusing
//!   (frequency × size ratios, recency penalties, history boosts, AIMD
//!   backoffs, delay gating, …) — mirroring §2's observation that
//!   "state-of-the-art heuristics are delicate recombinations of existing
//!   approaches" and that LLMs remix pretrained patterns.
//! * **Exemplar conditioning**: the prompt carries the best scored
//!   programs so far (§4.2.1's top-2 feedback); the generator mutates and
//!   crosses them over, plus keeps exploring fresh combinations.
//! * **Calibrated hallucination** ([`faults`]): a configurable fraction of
//!   candidates carries exactly the fault classes the paper reports —
//!   float literals, unguarded division, unknown identifiers, truncated
//!   syntax — so the Checker path (and §5.0.3's compile-rate numbers) is
//!   exercised realistically.
//! * **stderr-driven repair**: given compiler/verifier diagnostics, the
//!   generator applies the fix an LLM learns from feedback (round floats,
//!   wrap divisors in `max(.., 1)`, replace hallucinated names), with
//!   imperfect success — reproducing the paper's "+19% after stderr"
//!   second pass.
//! * **Token accounting** ([`tokens`]): prompt and completion sizes are
//!   metered so the §4.2.6 cost experiment has something to measure.

pub mod faults;
pub mod flaky;
pub mod generator;
pub mod motifs;
pub mod prompt;
pub mod tokens;

pub use flaky::{FlakyConfig, FlakyGen, FlakyStats};
pub use generator::{GenConfig, GenError, Generator, MockLlm};
pub use prompt::{Exemplar, Prompt};
pub use tokens::TokenLedger;
