//! Prompt assembly — the `Template` as the Generator sees it.
//!
//! §4.2.1 of the paper: "The prompt to the Generator includes a natural
//! language description of our priority queue interface and available
//! features (Table 1), the function signature for `priority()`, and example
//! priority functions seeded at the start of the search". We reproduce that
//! structure (and render it to real text, because the §4.2.6 token ledger
//! meters prompt size).

use policysmith_dsl::{Feature, Mode};

/// A scored example program fed back into the next round (§4.2.1: "the top
/// two performing heuristics across all previous rounds").
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    pub source: String,
    pub score: f64,
}

/// Everything handed to the Generator for one batch.
#[derive(Debug, Clone)]
pub struct Prompt {
    /// Which template (cache `priority()` vs kernel `cong_control()`).
    pub mode: Mode,
    /// Natural-language constraints (§3: allowed constructs, performance
    /// requirements).
    pub constraints: String,
    /// Best programs so far, best first.
    pub exemplars: Vec<Exemplar>,
    /// Diagnostics from a failed sibling, when repairing.
    pub feedback: Option<String>,
}

impl Prompt {
    /// Fresh prompt for a template mode with the default constraint text.
    pub fn new(mode: Mode) -> Self {
        let constraints = match mode {
            Mode::Cache => "Implement priority(obj) for a priority-queue web cache. \
                 Integer arithmetic only. The lowest-priority object is evicted. \
                 Guard divisions against zero. O(log N) per access."
                .to_string(),
            Mode::Kernel => "Implement cong_control() returning the new cwnd in segments. \
                 Kernel constraints: no floating point, no unbounded loops, all \
                 divisions must be provably nonzero (the verifier rejects otherwise)."
                .to_string(),
            Mode::Lb => "Implement score(server, req) for a dispatch-tier load balancer. \
                 The expression is evaluated once per server; the request is sent to \
                 the LOWEST-scoring server (argmin, ties break to the lower index). \
                 Integer arithmetic only. Guard divisions against zero — \
                 server.speed and req.size are never zero, the other features can be. \
                 O(1) per server per dispatch."
                .to_string(),
            Mode::Aqm => "Implement act(pkt, q) for an active-queue-management policy at \
                 the bottleneck's dequeue hook. The returned value is a VERDICT: \
                 <= 0 forwards the packet, == 1 ECN-marks it, >= 2 drops it. \
                 Integer arithmetic only. Guard divisions against zero — pkt.size, \
                 q.capacity and q.drain_rate are never zero, the other features \
                 can be. One decision per packet at line rate, so O(1)."
                .to_string(),
        };
        Prompt { mode, constraints, exemplars: Vec::new(), feedback: None }
    }

    /// Replace the exemplar set (best first).
    pub fn with_exemplars(mut self, exemplars: Vec<Exemplar>) -> Self {
        self.exemplars = exemplars;
        self
    }

    /// Render to the text a real LLM endpoint would receive; used for token
    /// accounting (§4.2.6).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("### Template\n");
        out.push_str(&self.constraints);
        out.push_str("\n\n### Available features\n");
        for f in Feature::catalog(self.mode) {
            out.push_str(&f.name());
            out.push('\n');
        }
        if !self.exemplars.is_empty() {
            out.push_str("\n### Best heuristics so far\n");
            for ex in &self.exemplars {
                out.push_str(&format!("// score {:.4}\n{}\n", ex.score, ex.source));
            }
        }
        if let Some(fb) = &self.feedback {
            out.push_str("\n### Compiler feedback on your previous attempt\n");
            out.push_str(fb);
        }
        out.push_str("\n### Respond with a single expression.\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_sections() {
        let p = Prompt::new(Mode::Cache)
            .with_exemplars(vec![Exemplar { source: "obj.count".into(), score: 0.12 }]);
        let text = p.render();
        assert!(text.contains("### Template"));
        assert!(text.contains("obj.count"));
        assert!(text.contains("ages.p75") || text.contains("ages.p50"));
        assert!(text.contains("score 0.12"));
        assert!(!text.contains("Compiler feedback"));
    }

    #[test]
    fn kernel_prompt_lists_kernel_features() {
        let text = Prompt::new(Mode::Kernel).render();
        assert!(text.contains("cwnd"));
        assert!(text.contains("hist_rtt[0]"));
        assert!(!text.contains("obj.size"));
    }

    #[test]
    fn lb_prompt_lists_lb_features() {
        let text = Prompt::new(Mode::Lb).render();
        assert!(text.contains("server.queue_len"));
        assert!(text.contains("server.ewma_latency"));
        assert!(text.contains("req.size"));
        assert!(text.contains("argmin"));
        assert!(!text.contains("obj.size"));
        assert!(!text.contains("cwnd"));
    }

    #[test]
    fn aqm_prompt_lists_aqm_features() {
        let text = Prompt::new(Mode::Aqm).render();
        assert!(text.contains("pkt.sojourn"));
        assert!(text.contains("q.drain_rate"));
        assert!(text.contains("aqm.since_drop"));
        assert!(text.contains("VERDICT"));
        assert!(!text.contains("obj.size"));
        assert!(!text.contains("server.queue_len"));
        assert!(!text.contains("cwnd"));
    }

    #[test]
    fn feedback_section_appears_when_present() {
        let mut p = Prompt::new(Mode::Kernel);
        p.feedback = Some("verifier: R3 includes 0".into());
        assert!(p.render().contains("Compiler feedback"));
    }
}
