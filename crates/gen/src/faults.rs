//! Calibrated fault injection — the "hallucination" side of the mock LLM.
//!
//! §3 of the paper: "The LLM, of course, may produce code that does not
//! honor these constraints, due to hallucination, producing plausible yet
//! non-conforming or incorrect code." §5.0.3 quantifies it: only 63% of
//! kernel candidates passed the verifier first-try (vs 92% compiling for
//! caching), with float arithmetic and missing division-by-zero checks the
//! dominant causes. This module reproduces those fault classes; the
//! per-study rates live in [`crate::generator::GenConfig`].

use policysmith_dsl::{BinOp, Expr, Feature, Mode};
use rand::rngs::StdRng;
use rand::RngExt;

/// The fault classes the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Floating-point literal (kernel: forbidden outright; cache: the
    /// integer template rejects it too).
    Float,
    /// Division whose divisor may be zero (caught by the kbpf verifier in
    /// kernel mode; a latent runtime fault in cache mode).
    UnguardedDiv,
    /// A plausible-but-nonexistent feature name.
    UnknownIdent,
    /// Truncated / malformed source.
    Syntax,
}

/// Weighted fault mix; weights need not sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    pub float: f64,
    pub unguarded_div: f64,
    pub unknown_ident: f64,
    pub syntax: f64,
}

impl FaultMix {
    /// Cache-study mix: mostly floats and hallucinated names (§4.1.3:
    /// "most errors surface as build failures").
    pub fn cache() -> FaultMix {
        FaultMix { float: 0.4, unguarded_div: 0.05, unknown_ident: 0.35, syntax: 0.2 }
    }

    /// Kernel-study mix (§5.0.3: floats and missing div-zero checks are
    /// "the most common causes").
    pub fn kernel() -> FaultMix {
        FaultMix { float: 0.45, unguarded_div: 0.40, unknown_ident: 0.10, syntax: 0.05 }
    }

    /// Load-balancing mix: userspace template, so like the cache mix, but
    /// with more unguarded divisions — per-server rate math invites them.
    pub fn lb() -> FaultMix {
        FaultMix { float: 0.35, unguarded_div: 0.20, unknown_ident: 0.30, syntax: 0.15 }
    }

    /// AQM mix: userspace template like lb; delay-estimate rate math makes
    /// unguarded divisions the second-most-common slip.
    pub fn aqm() -> FaultMix {
        FaultMix { float: 0.35, unguarded_div: 0.25, unknown_ident: 0.25, syntax: 0.15 }
    }

    /// Draw a fault kind according to the weights.
    pub fn sample(&self, rng: &mut StdRng) -> FaultKind {
        let total = self.float + self.unguarded_div + self.unknown_ident + self.syntax;
        let mut x = rng.random_range(0.0..total);
        for (w, k) in [
            (self.float, FaultKind::Float),
            (self.unguarded_div, FaultKind::UnguardedDiv),
            (self.unknown_ident, FaultKind::UnknownIdent),
        ] {
            if x < w {
                return k;
            }
            x -= w;
        }
        FaultKind::Syntax
    }
}

/// Plausible-but-wrong identifiers an LLM hallucinates per template.
fn fake_idents(mode: Mode) -> &'static [&'static str] {
    match mode {
        Mode::Cache => &["obj.frequency", "obj.weight", "cache.pressure", "hist.age", "obj.ttl"],
        Mode::Kernel => &["rtt_var", "bytes_acked", "queue_len", "cwnd_max", "pacing_rate"],
        Mode::Lb => &["server.load", "server.cpu", "server.rtt", "req.priority", "fleet.size"],
        Mode::Aqm => &["q.len", "q.delay", "pkt.priority", "aqm.prob", "link.rate"],
    }
}

/// Possibly-zero divisors per template (what a careless candidate divides
/// by).
fn risky_divisors(mode: Mode) -> Vec<Feature> {
    match mode {
        Mode::Cache => vec![Feature::HistCount, Feature::ObjAge, Feature::CacheObjects],
        Mode::Kernel => vec![
            Feature::InflightPkts,
            Feature::LossEvent,
            Feature::HistLoss(0),
            Feature::AckedBytes,
            Feature::HistQdelay(0),
        ],
        Mode::Lb => {
            vec![Feature::ServerQueueLen, Feature::ServerInflight, Feature::ServerEwmaLatency]
        }
        Mode::Aqm => {
            vec![Feature::QueueBytes, Feature::QueuePkts, Feature::SojournEwmaUs, Feature::AqmDrops]
        }
    }
}

/// Apply `kind` to a valid candidate, returning corrupted *source text*
/// (faults like truncation only exist at the text level).
pub fn inject(kind: FaultKind, expr: &Expr, mode: Mode, rng: &mut StdRng) -> String {
    match kind {
        FaultKind::Float => {
            // replace a random integer constant with a fractional version,
            // or scale the whole expression by a float
            let n = expr.size();
            for _ in 0..8 {
                let ix = rng.random_range(0..n);
                if let Some(Expr::Int(v)) = expr.get_subexpr(ix) {
                    let f = *v as f64 + [0.5, 0.25, 0.75][rng.random_range(0..3usize)];
                    let mutated = expr.replace_subexpr(ix, &Expr::Float(f));
                    return policysmith_dsl::to_source(&mutated);
                }
            }
            let scaled = Expr::bin(BinOp::Mul, expr.clone(), Expr::Float(1.5));
            policysmith_dsl::to_source(&scaled)
        }
        FaultKind::UnguardedDiv => {
            let divisors = risky_divisors(mode);
            let d = divisors[rng.random_range(0..divisors.len())];
            let n = expr.size();
            let ix = rng.random_range(0..n);
            let victim = expr.get_subexpr(ix).cloned().unwrap_or(Expr::Int(1));
            let divided = Expr::bin(BinOp::Div, victim, Expr::Feat(d));
            policysmith_dsl::to_source(&expr.replace_subexpr(ix, &divided))
        }
        FaultKind::UnknownIdent => {
            let src = policysmith_dsl::to_source(expr);
            let fakes = fake_idents(mode);
            let fake = fakes[rng.random_range(0..fakes.len())];
            // replace the first feature occurrence textually
            match expr.features().first() {
                Some(f) => src.replacen(&f.name(), fake, 1),
                None => format!("{src} + {fake}"),
            }
        }
        FaultKind::Syntax => {
            let src = policysmith_dsl::to_source(expr);
            match rng.random_range(0..3u8) {
                0 if src.contains(')') => {
                    // truncate at the last closing paren (mid-generation cutoff)
                    let cut = src.rfind(')').unwrap();
                    src[..cut].to_string()
                }
                1 => format!("{src} +"),
                _ => format!("{src} ? 1"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{check, parse, Mode};
    use rand::SeedableRng;

    fn sample_expr() -> Expr {
        parse("if(loss, max(cwnd >> 1, 2), cwnd + max(acked / max(mss, 1), 1))").unwrap()
    }

    #[test]
    fn float_fault_fails_check_not_parse() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = inject(FaultKind::Float, &sample_expr(), Mode::Kernel, &mut rng);
        let e = parse(&src).expect("float faults still parse");
        assert!(check(&e, Mode::Kernel).is_err());
    }

    #[test]
    fn unguarded_div_parses_and_checks_with_warning() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = inject(FaultKind::UnguardedDiv, &sample_expr(), Mode::Kernel, &mut rng);
        let e = parse(&src).expect("div faults still parse: {src}");
        let report = policysmith_dsl::check_with_warnings(&e, Mode::Kernel, 1024, 64);
        assert!(report.ok(), "unguarded div is not a type error");
        assert!(!report.warnings.is_empty(), "but it must warn: {src}");
    }

    #[test]
    fn unknown_ident_fails_parse() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = inject(FaultKind::UnknownIdent, &sample_expr(), Mode::Kernel, &mut rng);
        assert!(parse(&src).is_err(), "{src}");
    }

    #[test]
    fn syntax_fault_fails_parse() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = inject(FaultKind::Syntax, &sample_expr(), Mode::Kernel, &mut rng);
            assert!(parse(&src).is_err(), "seed {seed}: `{src}` unexpectedly parsed");
        }
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = FaultMix::kernel();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            match mix.sample(&mut rng) {
                FaultKind::Float => counts[0] += 1,
                FaultKind::UnguardedDiv => counts[1] += 1,
                FaultKind::UnknownIdent => counts[2] += 1,
                FaultKind::Syntax => counts[3] += 1,
            }
        }
        assert!(counts[0] > counts[2], "floats dominate idents in kernel mix");
        assert!(counts[1] > counts[3], "divisions dominate syntax");
    }
}
