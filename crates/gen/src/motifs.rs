//! The motif library: domain idioms the mock LLM "remembers" from
//! pretraining.
//!
//! §2 of the paper argues that most state-of-the-art heuristics are
//! "delicate recombinations and improvements of existing approaches" and
//! that LLMs are effective precisely because they remix these recurring
//! structures. Each function below is one such structure with randomized
//! constants; the generator sums/nests them into candidates.

use policysmith_dsl::{BinOp, CmpOp, Expr, Feature};
use rand::RngExt;

fn int(v: i64) -> Expr {
    Expr::Int(v)
}

fn feat(f: Feature) -> Expr {
    Expr::Feat(f)
}

/// A constant drawn log-uniformly from `[lo, hi]`.
fn scale(rng: &mut impl RngExt, lo: i64, hi: i64) -> i64 {
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    rng.random_range(llo..=lhi).exp() as i64
}

// ---------------------------------------------------------------- cache --

/// Recency: prefer recently-used (LRU flavour).
pub fn cache_recency(rng: &mut impl RngExt) -> Expr {
    if rng.random_bool(0.5) {
        feat(Feature::ObjLastAccess)
    } else {
        Expr::Neg(Box::new(Expr::bin(
            BinOp::Div,
            feat(Feature::ObjAge),
            int(scale(rng, 10, 2_000)),
        )))
    }
}

/// Frequency: prefer often-used (LFU flavour).
pub fn cache_frequency(rng: &mut impl RngExt) -> Expr {
    Expr::bin(BinOp::Mul, feat(Feature::ObjCount), int(scale(rng, 2, 200)))
}

/// GDSF-style frequency-per-byte ratio (`obj.size ≥ 1`, so the division is
/// checker-clean).
pub fn cache_gdsf_ratio(rng: &mut impl RngExt) -> Expr {
    Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Mul, feat(Feature::ObjCount), int(scale(rng, 1_024, 1 << 20))),
        feat(Feature::ObjSize),
    )
}

/// Size penalty: big objects cost more to keep.
pub fn cache_size_penalty(rng: &mut impl RngExt) -> Expr {
    Expr::Neg(Box::new(Expr::bin(BinOp::Div, feat(Feature::ObjSize), int(scale(rng, 50, 5_000)))))
}

/// History boost: objects we regretted evicting get protected (Table 1's
/// eviction-history features).
pub fn cache_history_boost(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        feat(Feature::HistContains),
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, feat(Feature::HistCount), int(scale(rng, 2, 50))),
            int(scale(rng, 1, 100)),
        ),
        Expr::Neg(Box::new(int(scale(rng, 5, 100)))),
    )
}

/// Percentile gate: compare the object against the resident population.
pub fn cache_percentile_gate(rng: &mut impl RngExt) -> Expr {
    let p = *[25u8, 50, 70, 75, 90].get(rng.random_range(0..5usize)).unwrap();
    let bonus = int(scale(rng, 5, 80));
    let malus = Expr::Neg(Box::new(int(scale(rng, 5, 80))));
    match rng.random_range(0..3u8) {
        0 => Expr::ite(
            Expr::cmp(CmpOp::Gt, feat(Feature::ObjSize), feat(Feature::SizesPct(p))),
            malus,
            bonus,
        ),
        1 => Expr::ite(
            Expr::cmp(CmpOp::Gt, feat(Feature::ObjCount), feat(Feature::CountsPct(p))),
            bonus,
            malus,
        ),
        _ => Expr::ite(
            Expr::cmp(CmpOp::Gt, feat(Feature::ObjAge), feat(Feature::AgesPct(p))),
            malus,
            int(0),
        ),
    }
}

/// Freshness bonus for very recently touched objects.
pub fn cache_fresh_bonus(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Lt, feat(Feature::ObjAge), int(scale(rng, 100, 10_000))),
        int(scale(rng, 5, 60)),
        int(0),
    )
}

/// Penalty for objects that never proved themselves.
pub fn cache_cold_penalty(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Lt, feat(Feature::ObjCount), int(rng.random_range(2..6))),
        Expr::Neg(Box::new(int(scale(rng, 5, 60)))),
        int(0),
    )
}

/// All cache motif constructors.
pub fn cache_motifs() -> Vec<fn(&mut rand::rngs::StdRng) -> Expr> {
    vec![
        cache_recency,
        cache_frequency,
        cache_gdsf_ratio,
        cache_size_penalty,
        cache_history_boost,
        cache_percentile_gate,
        cache_fresh_bonus,
        cache_cold_penalty,
    ]
}

// --------------------------------------------------------------- kernel --

/// Multiplicative backoff on loss (the AIMD decrease).
pub fn cc_backoff(rng: &mut impl RngExt) -> Expr {
    match rng.random_range(0..3u8) {
        0 => Expr::bin(BinOp::Max, Expr::bin(BinOp::Shr, feat(Feature::Cwnd), int(1)), int(2)),
        1 => Expr::bin(
            BinOp::Max,
            Expr::bin(
                BinOp::Div,
                Expr::bin(BinOp::Mul, feat(Feature::Cwnd), int(rng.random_range(2..=3))),
                int(4),
            ),
            int(2),
        ),
        _ => Expr::bin(BinOp::Max, feat(Feature::Ssthresh), int(2)),
    }
}

/// Additive (or ack-paced) growth.
pub fn cc_growth(rng: &mut impl RngExt) -> Expr {
    match rng.random_range(0..3u8) {
        0 => Expr::bin(BinOp::Add, feat(Feature::Cwnd), int(rng.random_range(1..=2))),
        1 => Expr::bin(
            BinOp::Add,
            feat(Feature::Cwnd),
            Expr::bin(
                BinOp::Max,
                Expr::bin(BinOp::Div, feat(Feature::AckedBytes), feat(Feature::Mss)),
                int(1),
            ),
        ),
        _ => Expr::bin(
            BinOp::Add,
            feat(Feature::Cwnd),
            Expr::ite(
                Expr::cmp(CmpOp::Lt, feat(Feature::Cwnd), feat(Feature::Ssthresh)),
                int(2),
                int(1),
            ),
        ),
    }
}

/// Delay gating: back off when the queue (srtt − min_rtt) builds.
pub fn cc_delay_gate(rng: &mut impl RngExt) -> Expr {
    let thresh = scale(rng, 2_000, 30_000);
    Expr::ite(
        Expr::cmp(
            CmpOp::Gt,
            feat(Feature::SrttUs),
            Expr::bin(BinOp::Add, feat(Feature::MinRttUs), int(thresh)),
        ),
        Expr::bin(BinOp::Max, Expr::bin(BinOp::Sub, feat(Feature::Cwnd), int(1)), int(2)),
        Expr::bin(BinOp::Add, feat(Feature::Cwnd), int(1)),
    )
}

/// BBR-ish rate×RTT window target (all divisors provably nonzero).
pub fn cc_rate_target(rng: &mut impl RngExt) -> Expr {
    let gain_num = rng.random_range(9..=14); // gain ≈ 0.9 .. 1.4
    Expr::bin(
        BinOp::Max,
        Expr::bin(
            BinOp::Div,
            Expr::bin(
                BinOp::Mul,
                Expr::bin(
                    BinOp::Div,
                    Expr::bin(BinOp::Div, feat(Feature::DeliveryRateBps), int(8)),
                    int(1_000_000),
                ),
                Expr::bin(BinOp::Mul, feat(Feature::MinRttUs), int(gain_num)),
            ),
            Expr::bin(BinOp::Mul, feat(Feature::Mss), int(10)),
        ),
        int(4),
    )
}

/// History-trend gating over the §5.0.1 arrays.
pub fn cc_hist_trend(rng: &mut impl RngExt) -> Expr {
    let far = rng.random_range(2..=9u8);
    Expr::ite(
        Expr::cmp(
            CmpOp::Gt,
            feat(Feature::HistRtt(0)),
            Expr::bin(BinOp::Add, feat(Feature::HistRtt(far)), int(scale(rng, 1_000, 20_000))),
        ),
        Expr::bin(BinOp::Max, Expr::bin(BinOp::Sub, feat(Feature::Cwnd), int(2)), int(2)),
        Expr::bin(BinOp::Add, feat(Feature::Cwnd), int(1)),
    )
}

/// Recent-loss caution using the loss history ring.
pub fn cc_loss_memory(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(
            CmpOp::Gt,
            Expr::bin(BinOp::Add, feat(Feature::HistLoss(0)), feat(Feature::HistLoss(1))),
            int(0),
        ),
        feat(Feature::Cwnd),
        Expr::bin(BinOp::Add, feat(Feature::Cwnd), int(rng.random_range(1..=2))),
    )
}

/// All kernel growth-side motifs (the loss side is [`cc_backoff`]).
pub fn cc_motifs() -> Vec<fn(&mut rand::rngs::StdRng) -> Expr> {
    vec![cc_growth, cc_delay_gate, cc_rate_target, cc_hist_trend, cc_loss_memory]
}

// ------------------------------------------------------------------- lb --
//
// Dispatch-scoring idioms from the load-balancing literature. Scores are
// argmin (lowest wins), so "load" terms enter positively.

/// JSQ flavour: queue length, optionally weighted.
pub fn lb_queue_len(rng: &mut impl RngExt) -> Expr {
    Expr::bin(BinOp::Mul, feat(Feature::ServerQueueLen), int(scale(rng, 1, 1_000)))
}

/// Speed-normalized backlog — the least-work-left shape for heterogeneous
/// fleets (`server.speed >= 1`, so the division is checker-clean).
pub fn lb_normalized_load(rng: &mut impl RngExt) -> Expr {
    let backlog = if rng.random_bool(0.5) {
        feat(Feature::ServerInflight)
    } else {
        feat(Feature::ServerQueueLen)
    };
    Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Mul, backlog, int(scale(rng, 1_000, 100_000))),
        feat(Feature::ServerSpeed),
    )
}

/// Expected own-completion term: this request's demand on this server.
pub fn lb_size_cost(rng: &mut impl RngExt) -> Expr {
    Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Mul, feat(Feature::ReqSize), int(scale(rng, 10, 1_000))),
        feat(Feature::ServerSpeed),
    )
}

/// Latency-aware term: observed EWMA response time as a congestion signal.
pub fn lb_latency_signal(rng: &mut impl RngExt) -> Expr {
    Expr::bin(BinOp::Div, feat(Feature::ServerEwmaLatency), int(scale(rng, 100, 10_000)))
}

/// Inflight penalty with an idle bonus — avoids servers already saturated.
pub fn lb_inflight_penalty(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Eq, feat(Feature::ServerInflight), int(0)),
        Expr::Neg(Box::new(int(scale(rng, 10, 500)))),
        Expr::bin(BinOp::Mul, feat(Feature::ServerInflight), int(scale(rng, 5, 500))),
    )
}

/// Least-work-left: the exact residual backlog plus this request's own
/// demand, both normalized by speed — the strongest classical shape now
/// that the dispatch tier tracks residual work (`server.speed >= 1`, so
/// both divisions are checker-clean).
pub fn lb_work_left(rng: &mut impl RngExt) -> Expr {
    let own_cost = Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Mul, feat(Feature::ReqSize), int(1_000)),
        feat(Feature::ServerSpeed),
    );
    if rng.random_bool(0.5) {
        Expr::bin(BinOp::Add, feat(Feature::ServerWorkLeft), own_cost)
    } else {
        Expr::bin(BinOp::Div, feat(Feature::ServerWorkLeft), int(scale(rng, 100, 10_000)))
    }
}

/// Queue-pressure gate: a hard penalty once the queue passes a threshold
/// (protects against bounded-queue drops during bursts).
pub fn lb_queue_gate(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Gt, feat(Feature::ServerQueueLen), int(rng.random_range(4..32))),
        int(scale(rng, 10_000, 1_000_000)),
        int(0),
    )
}

/// All lb scoring motifs.
pub fn lb_motifs() -> Vec<fn(&mut rand::rngs::StdRng) -> Expr> {
    vec![
        lb_queue_len,
        lb_normalized_load,
        lb_size_cost,
        lb_latency_signal,
        lb_inflight_penalty,
        lb_work_left,
        lb_queue_gate,
    ]
}

// ------------------------------------------------------------------ aqm --
//
// AQM verdict idioms. The template sums to a verdict: `<= 0` forward, `1`
// ECN-mark, `>= 2` drop — so congestion terms contribute +1/+2 and guard
// terms contribute negative values that veto signalling.

/// CoDel flavour: signal when the head packet's sojourn exceeds a target.
pub fn aqm_sojourn_gate(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Gt, feat(Feature::PktSojournUs), int(scale(rng, 2_000, 20_000))),
        int(rng.random_range(1..=2)),
        int(0),
    )
}

/// PIE flavour: signal on the estimated queueing delay — occupancy over
/// drain rate (`q.drain_rate >= 1`, so the division is checker-clean).
pub fn aqm_delay_estimate_gate(rng: &mut impl RngExt) -> Expr {
    let est = Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Mul, feat(Feature::QueueBytes), int(8_000_000)),
        feat(Feature::DrainRateBps),
    );
    Expr::ite(
        Expr::cmp(CmpOp::Gt, est, int(scale(rng, 5_000, 40_000))),
        int(rng.random_range(1..=2)),
        int(0),
    )
}

/// RED flavour: signal past a fractional occupancy threshold
/// (`q.bytes * 100 > q.capacity * P`).
pub fn aqm_occupancy_gate(rng: &mut impl RngExt) -> Expr {
    let pct = rng.random_range(30..=90i64);
    Expr::ite(
        Expr::cmp(
            CmpOp::Gt,
            Expr::bin(BinOp::Mul, feat(Feature::QueueBytes), int(100)),
            Expr::bin(BinOp::Mul, feat(Feature::QueueCapacityBytes), int(pct)),
        ),
        int(rng.random_range(1..=2)),
        int(0),
    )
}

/// Smoothed-delay gate over the EWMA sojourn (ignores transient spikes).
pub fn aqm_ewma_gate(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Gt, feat(Feature::SojournEwmaUs), int(scale(rng, 3_000, 25_000))),
        int(1),
        int(0),
    )
}

/// Signal pacing: veto any drop/mark shortly after the previous one — the
/// CoDel-interval idiom that keeps the drop rate bounded.
pub fn aqm_spacing_guard(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Lt, feat(Feature::SinceLastDropUs), int(scale(rng, 10_000, 200_000))),
        Expr::Neg(Box::new(int(rng.random_range(2..=4)))),
        int(0),
    )
}

/// Short-queue safety: never signal when only a few packets are queued.
pub fn aqm_short_queue_guard(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Lt, feat(Feature::QueuePkts), int(rng.random_range(2..6))),
        Expr::Neg(Box::new(int(rng.random_range(3..=6)))),
        int(0),
    )
}

/// Escalation: a deep queue (in packets) upgrades marks to drops.
pub fn aqm_depth_escalation(rng: &mut impl RngExt) -> Expr {
    Expr::ite(
        Expr::cmp(CmpOp::Gt, feat(Feature::QueuePkts), int(scale(rng, 20, 200))),
        int(1),
        int(0),
    )
}

/// All aqm verdict motifs.
pub fn aqm_motifs() -> Vec<fn(&mut rand::rngs::StdRng) -> Expr> {
    vec![
        aqm_sojourn_gate,
        aqm_delay_estimate_gate,
        aqm_occupancy_gate,
        aqm_ewma_gate,
        aqm_spacing_guard,
        aqm_short_queue_guard,
        aqm_depth_escalation,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{check, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cache_motifs_are_checker_clean() {
        let mut rng = StdRng::seed_from_u64(7);
        for f in cache_motifs() {
            for _ in 0..20 {
                let e = f(&mut rng);
                check(&e, Mode::Cache).unwrap_or_else(|err| {
                    panic!("cache motif produced invalid expr: {err}\n{:?}", e)
                });
            }
        }
    }

    #[test]
    fn kernel_motifs_pass_the_full_pipeline() {
        use policysmith_kbpf_smoke::*;
        let mut rng = StdRng::seed_from_u64(11);
        for f in cc_motifs().into_iter().chain([cc_backoff as fn(&mut StdRng) -> Expr]) {
            for _ in 0..20 {
                let e = f(&mut rng);
                check(&e, Mode::Kernel).unwrap();
                smoke_verify(&e);
            }
        }
    }

    /// Minimal inline verify helper (gen does not depend on kbpf; this is a
    /// structural stand-in asserting the guard discipline instead).
    mod policysmith_kbpf_smoke {
        pub use policysmith_dsl::Expr;

        pub fn smoke_verify(e: &Expr) {
            // every division's divisor must be syntactically nonzero —
            // that is exactly what the kbpf verifier will prove with
            // intervals, and motifs must satisfy it by construction
            let report = policysmith_dsl::check_with_warnings(
                e,
                policysmith_dsl::Mode::Kernel,
                usize::MAX,
                usize::MAX,
            );
            assert!(
                report.warnings.is_empty(),
                "motif has unguarded division: {}",
                policysmith_dsl::to_source(e)
            );
        }
    }

    #[test]
    fn lb_motifs_are_checker_clean() {
        let mut rng = StdRng::seed_from_u64(13);
        for f in lb_motifs() {
            for _ in 0..20 {
                let e = f(&mut rng);
                check(&e, Mode::Lb)
                    .unwrap_or_else(|err| panic!("lb motif produced invalid expr: {err}\n{:?}", e));
                let report =
                    policysmith_dsl::check_with_warnings(&e, Mode::Lb, usize::MAX, usize::MAX);
                assert!(
                    report.warnings.is_empty(),
                    "lb motif has unguarded division: {}",
                    policysmith_dsl::to_source(&e)
                );
            }
        }
    }

    #[test]
    fn aqm_motifs_are_checker_clean() {
        let mut rng = StdRng::seed_from_u64(17);
        for f in aqm_motifs() {
            for _ in 0..20 {
                let e = f(&mut rng);
                check(&e, Mode::Aqm)
                    .unwrap_or_else(|err| panic!("aqm motif produced invalid expr: {err}\n{e:?}"));
                let report =
                    policysmith_dsl::check_with_warnings(&e, Mode::Aqm, usize::MAX, usize::MAX);
                assert!(
                    report.warnings.is_empty(),
                    "aqm motif has unguarded division: {}",
                    policysmith_dsl::to_source(&e)
                );
            }
        }
    }

    #[test]
    fn motifs_are_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(3);
            cache_motifs().iter().map(|f| policysmith_dsl::to_source(&f(&mut rng))).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(3);
            cache_motifs().iter().map(|f| policysmith_dsl::to_source(&f(&mut rng))).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn scale_is_log_uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = scale(&mut rng, 10, 2_000);
            assert!((10..=2_000).contains(&v), "{v}");
        }
    }
}
