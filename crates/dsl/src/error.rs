//! Error types for the whole candidate pipeline: parse → check → evaluate.
//!
//! The paper's feedback loop forwards "stderr" to the generator (§4.1.3,
//! §5.0.3), so every error here renders as a compiler-style one-line
//! diagnostic via `Display`; the mock generator pattern-matches on the
//! structured variants to decide which repair rule to apply.

use crate::feature::{Feature, Mode};
use std::fmt;

/// Byte offset into the candidate source where an error was detected.
pub type Pos = usize;

/// Lexing / parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A character that starts no token.
    UnexpectedChar { pos: Pos, ch: char },
    /// A token in a position where the grammar does not allow it.
    UnexpectedToken { pos: Pos, found: String, expected: &'static str },
    /// Source ended mid-expression.
    UnexpectedEof { expected: &'static str },
    /// A dotted identifier that resolves to no known feature or function.
    UnknownIdentifier { pos: Pos, name: String },
    /// Wrong number of arguments to an intrinsic (`min`, `clamp`, `if`, …).
    BadArity { pos: Pos, func: String, expected: usize, got: usize },
    /// Integer literal out of `i64` range.
    IntOutOfRange { pos: Pos, text: String },
    /// History index / percentile parameter outside its legal range.
    BadParam { pos: Pos, name: String },
    /// Expression nests deeper than the parser allows.
    TooDeep { pos: Pos },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { pos, ch } => {
                write!(f, "error: unexpected character `{ch}` at byte {pos}")
            }
            ParseError::UnexpectedToken { pos, found, expected } => {
                write!(f, "error: expected {expected}, found `{found}` at byte {pos}")
            }
            ParseError::UnexpectedEof { expected } => {
                write!(f, "error: unexpected end of input, expected {expected}")
            }
            ParseError::UnknownIdentifier { pos, name } => {
                write!(f, "error: unknown identifier `{name}` at byte {pos}")
            }
            ParseError::BadArity { pos, func, expected, got } => {
                write!(f, "error: `{func}` expects {expected} argument(s), got {got} (byte {pos})")
            }
            ParseError::IntOutOfRange { pos, text } => {
                write!(f, "error: integer literal `{text}` out of range at byte {pos}")
            }
            ParseError::BadParam { pos, name } => {
                write!(f, "error: parameter out of range in `{name}` at byte {pos}")
            }
            ParseError::TooDeep { pos } => {
                write!(f, "error: expression nested too deeply at byte {pos}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Static (semantic) check failures — the `Checker` role of the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// Floating-point is forbidden in both templates (kernel: hard
    /// constraint; cache: the template is integer-valued). The single most
    /// common generator fault in the paper's kernel study.
    FloatLiteral { value: f64 },
    /// Feature not available in this template mode.
    FeatureUnavailable { feature: Feature, mode: Mode },
    /// Percentile / history-index parameter out of range.
    FeatureParamOutOfRange { feature: Feature },
    /// Tree exceeds the size budget of the template.
    TooLarge { size: usize, limit: usize },
    /// Tree exceeds the depth budget of the template.
    TooDeep { depth: usize, limit: usize },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::FloatLiteral { value } => write!(
                f,
                "error: floating-point literal `{value}` is not allowed (integer-only template)"
            ),
            CheckError::FeatureUnavailable { feature, mode } => {
                write!(f, "error: feature `{}` is not available in {:?} mode", feature.name(), mode)
            }
            CheckError::FeatureParamOutOfRange { feature } => {
                write!(f, "error: feature parameter out of range in `{}`", feature.name())
            }
            CheckError::TooLarge { size, limit } => {
                write!(f, "error: expression has {size} nodes, limit is {limit}")
            }
            CheckError::TooDeep { depth, limit } => {
                write!(f, "error: expression depth {depth} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Runtime evaluation failures (userspace interpreter). In the cache study a
/// faulting candidate is scored as failed; in the kernel study the verifier
/// proves these impossible before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Division or remainder by zero.
    DivByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivByZero => write!(f, "runtime error: division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_one_line() {
        let errs: Vec<String> = vec![
            ParseError::UnexpectedChar { pos: 3, ch: '$' }.to_string(),
            ParseError::UnknownIdentifier { pos: 0, name: "obj.weight".into() }.to_string(),
            CheckError::FloatLiteral { value: 0.75 }.to_string(),
            CheckError::FeatureUnavailable { feature: Feature::Cwnd, mode: Mode::Cache }
                .to_string(),
            EvalError::DivByZero.to_string(),
        ];
        for e in errs {
            assert!(e.starts_with("error:") || e.starts_with("runtime error:"));
            assert!(!e.contains('\n'));
        }
    }
}
