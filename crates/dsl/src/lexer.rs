//! Hand-written lexer for heuristic source.
//!
//! The token set is C-expression-like on purpose: the paper's Listing 1 is
//! (pseudo-)C, and the mock generator emits the same surface syntax so that
//! the parse-error fault class ("plausible yet non-conforming code", §3)
//! is realistic.

use crate::error::{ParseError, Pos};

/// A single token with its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Token kinds. Numeric literals keep their source text so the parser can
/// report out-of-range values faithfully.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Int(String),
    Float(String),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Question,
    Colon,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Shl,
    Shr,
}

impl TokenKind {
    /// Human-readable rendering for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(s) | TokenKind::Float(s) | TokenKind::Ident(s) => s.clone(),
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Slash => "/".into(),
            TokenKind::Percent => "%".into(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::Question => "?".into(),
            TokenKind::Colon => ":".into(),
            TokenKind::Bang => "!".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::EqEq => "==".into(),
            TokenKind::Ne => "!=".into(),
            TokenKind::AndAnd => "&&".into(),
            TokenKind::OrOr => "||".into(),
            TokenKind::Shl => "<<".into(),
            TokenKind::Shr => ">>".into(),
        }
    }
}

/// Tokenize `src`. Whitespace (including newlines) separates tokens and is
/// otherwise ignored; `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // A '.' is part of the number only when followed by a digit,
                // so `counts.p50` style paths never collide with floats.
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = src[start..i].to_string();
                out.push(Token {
                    kind: if is_float { TokenKind::Float(text) } else { TokenKind::Int(text) },
                    pos,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token { kind: TokenKind::Ident(src[start..i].to_string()), pos });
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, pos });
                i += 1;
            }
            '-' => {
                out.push(Token { kind: TokenKind::Minus, pos });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, pos });
                i += 1;
            }
            '%' => {
                out.push(Token { kind: TokenKind::Percent, pos });
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, pos });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, pos });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            '.' => {
                out.push(Token { kind: TokenKind::Dot, pos });
                i += 1;
            }
            '?' => {
                out.push(Token { kind: TokenKind::Question, pos });
                i += 1;
            }
            ':' => {
                out.push(Token { kind: TokenKind::Colon, pos });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ne, pos });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Bang, pos });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Le, pos });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    out.push(Token { kind: TokenKind::Shl, pos });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, pos });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ge, pos });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token { kind: TokenKind::Shr, pos });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, pos });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::EqEq, pos });
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar { pos, ch: '=' });
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    out.push(Token { kind: TokenKind::AndAnd, pos });
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar { pos, ch: '&' });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    out.push(Token { kind: TokenKind::OrOr, pos });
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar { pos, ch: '|' });
                }
            }
            other => return Err(ParseError::UnexpectedChar { pos, ch: other }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_expression() {
        assert_eq!(
            kinds("obj.count * 20"),
            vec![
                TokenKind::Ident("obj".into()),
                TokenKind::Dot,
                TokenKind::Ident("count".into()),
                TokenKind::Star,
                TokenKind::Int("20".into()),
            ]
        );
    }

    #[test]
    fn float_vs_dotted_path() {
        assert_eq!(kinds("0.75"), vec![TokenKind::Float("0.75".into())]);
        assert_eq!(
            kinds("ages.p75"),
            vec![TokenKind::Ident("ages".into()), TokenKind::Dot, TokenKind::Ident("p75".into()),]
        );
        // digit-dot-ident: '.' is punctuation, not a float
        assert_eq!(
            kinds("1.x"),
            vec![TokenKind::Int("1".into()), TokenKind::Dot, TokenKind::Ident("x".into()),]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b >= c == d != e && f || g << 1 >> 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Ident("c".into()),
                TokenKind::EqEq,
                TokenKind::Ident("d".into()),
                TokenKind::Ne,
                TokenKind::Ident("e".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("f".into()),
                TokenKind::OrOr,
                TokenKind::Ident("g".into()),
                TokenKind::Shl,
                TokenKind::Int("1".into()),
                TokenKind::Shr,
                TokenKind::Int("2".into()),
            ]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(
            kinds("1 + // trailing noise\n 2"),
            vec![TokenKind::Int("1".into()), TokenKind::Plus, TokenKind::Int("2".into())]
        );
    }

    #[test]
    fn history_indexing() {
        assert_eq!(
            kinds("hist_rtt[3]"),
            vec![
                TokenKind::Ident("hist_rtt".into()),
                TokenKind::LBracket,
                TokenKind::Int("3".into()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("a $ b"), Err(ParseError::UnexpectedChar { ch: '$', .. })));
        assert!(matches!(lex("a = b"), Err(ParseError::UnexpectedChar { ch: '=', .. })));
        assert!(matches!(lex("a & b"), Err(ParseError::UnexpectedChar { ch: '&', .. })));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 5);
    }
}
