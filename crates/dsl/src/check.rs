//! The static checker — the `Checker` role of the PolicySmith framework
//! (§3 of the paper) at the DSL level.
//!
//! Errors are violations of the template's "design spec": floats, features
//! outside the template's mode, out-of-range feature parameters, and
//! size/depth budgets. For kernel candidates the kbpf verifier adds a
//! second, independent layer (interval analysis) on the lowered bytecode —
//! mirroring how the paper relies on the eBPF verifier (§5.0.2).
//!
//! Additionally the checker emits **warnings** for divisions whose divisor
//! is not *syntactically* guarded (literal nonzero, `max(e, k)` with `k>0`,
//! or a feature whose declared range excludes zero). Warnings do not fail a
//! candidate in cache mode (a faulting division is a runtime failure there),
//! but the generator uses them to learn the `x / max(y, 1)` idiom the paper
//! describes kernel developers (and the verifier) forcing upon it.

use crate::ast::{BinOp, Expr};
use crate::error::CheckError;
use crate::feature::Mode;

/// Default node-count budget for a candidate expression.
pub const DEFAULT_MAX_SIZE: usize = 512;
/// Default depth budget for a candidate expression.
pub const DEFAULT_MAX_DEPTH: usize = 32;

/// A non-fatal diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A `/` or `%` whose divisor may be zero at runtime.
    DivisorMayBeZero {
        /// Pre-order index of the division node (for targeted repair).
        node_idx: usize,
    },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::DivisorMayBeZero { node_idx } => {
                write!(f, "warning: divisor may be zero (node {node_idx}); guard with max(.., 1)")
            }
        }
    }
}

/// Result of a full check: errors are fatal, warnings advisory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    pub errors: Vec<CheckError>,
    pub warnings: Vec<Warning>,
}

impl CheckReport {
    /// Did the candidate pass (no fatal errors)?
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Render all diagnostics as a compiler-style stderr blob for the
    /// generator feedback loop.
    pub fn stderr(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        for w in &self.warnings {
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }
}

/// Check `e` against template `mode` with default budgets; `Err` on the
/// first fatal error. Convenience wrapper over [`check_with_warnings`].
pub fn check(e: &Expr, mode: Mode) -> Result<(), CheckError> {
    let report = check_with_warnings(e, mode, DEFAULT_MAX_SIZE, DEFAULT_MAX_DEPTH);
    match report.errors.into_iter().next() {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// Full check with explicit budgets, collecting *all* errors and warnings
/// (the generator repairs one fault class at a time, so it wants the
/// complete list, like a real compiler's stderr).
pub fn check_with_warnings(e: &Expr, mode: Mode, max_size: usize, max_depth: usize) -> CheckReport {
    let mut report = CheckReport::default();

    let size = e.size();
    if size > max_size {
        report.errors.push(CheckError::TooLarge { size, limit: max_size });
    }
    let depth = e.depth();
    if depth > max_depth {
        report.errors.push(CheckError::TooDeep { depth, limit: max_depth });
    }

    let mut idx = 0usize;
    e.visit(&mut |node| {
        match node {
            Expr::Float(v) => report.errors.push(CheckError::FloatLiteral { value: *v }),
            Expr::Feat(f) => {
                if !f.param_in_range() {
                    report.errors.push(CheckError::FeatureParamOutOfRange { feature: *f });
                } else if !f.available_in(mode) {
                    report.errors.push(CheckError::FeatureUnavailable { feature: *f, mode });
                }
            }
            Expr::Bin(BinOp::Div | BinOp::Rem, _, divisor) if !divisor_nonzero(divisor) => {
                report.warnings.push(Warning::DivisorMayBeZero { node_idx: idx });
            }
            _ => {}
        }
        idx += 1;
    });

    report
}

/// Syntactic proof that an expression can never evaluate to zero.
///
/// Deliberately conservative — the same *shape* of reasoning the eBPF
/// verifier applies, reimplemented precisely (with intervals) in
/// `policysmith-kbpf`. Recognized shapes:
///
/// * nonzero integer literals,
/// * features whose declared range excludes 0 (`mss`, `obj.size`, …),
/// * `max(a, b)` where either bound is provably positive,
/// * `min(a, b)` where both are provably negative,
/// * `a + k` / `k + a` where `k > 0` and `a` is provably nonnegative,
/// * `clamp(x, lo, hi)` where `lo` is provably positive,
/// * `abs(x) + k`, `k > 0`,
/// * `1 << n` shapes (shl of a positive literal saturates, never zero).
pub fn divisor_nonzero(e: &Expr) -> bool {
    provably_positive(e) || provably_negative(e) || matches!(e, Expr::Int(v) if *v != 0)
}

fn provably_positive(e: &Expr) -> bool {
    match e {
        Expr::Int(v) => *v > 0,
        Expr::Feat(f) => f.range().0 > 0,
        Expr::Bin(BinOp::Max, a, b) => provably_positive(a) || provably_positive(b),
        Expr::Bin(BinOp::Min, a, b) => provably_positive(a) && provably_positive(b),
        Expr::Bin(BinOp::Add, a, b) => {
            (provably_positive(a) && provably_nonneg(b))
                || (provably_nonneg(a) && provably_positive(b))
        }
        Expr::Bin(BinOp::Mul, a, b) => provably_positive(a) && provably_positive(b),
        Expr::Bin(BinOp::Shl, a, b) => provably_positive(a) && provably_nonneg(b),
        Expr::Clamp(_, lo, _) => provably_positive(lo),
        Expr::Abs(_) => false, // abs(0) == 0
        _ => false,
    }
}

fn provably_negative(e: &Expr) -> bool {
    match e {
        Expr::Int(v) => *v < 0,
        Expr::Neg(a) => provably_positive(a),
        Expr::Bin(BinOp::Min, a, b) => provably_negative(a) || provably_negative(b),
        Expr::Bin(BinOp::Max, a, b) => provably_negative(a) && provably_negative(b),
        _ => false,
    }
}

fn provably_nonneg(e: &Expr) -> bool {
    match e {
        Expr::Int(v) => *v >= 0,
        Expr::Feat(f) => f.range().0 >= 0,
        Expr::Abs(_) => true,
        Expr::Cmp(..) | Expr::Not(_) => true,          // 0/1
        Expr::Bin(BinOp::And | BinOp::Or, ..) => true, // 0/1
        Expr::Bin(BinOp::Add | BinOp::Mul, a, b) => provably_nonneg(a) && provably_nonneg(b),
        Expr::Bin(BinOp::Max, a, b) => provably_nonneg(a) || provably_nonneg(b),
        Expr::Bin(BinOp::Min, a, b) => provably_nonneg(a) && provably_nonneg(b),
        Expr::Clamp(_, lo, _) => provably_nonneg(lo),
        _ => provably_positive(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn report(src: &str, mode: Mode) -> CheckReport {
        check_with_warnings(&parse(src).unwrap(), mode, DEFAULT_MAX_SIZE, DEFAULT_MAX_DEPTH)
    }

    #[test]
    fn valid_cache_heuristic_passes() {
        let r = report("obj.count * 20 - obj.age / 300", Mode::Cache);
        assert!(r.ok());
        assert!(r.warnings.is_empty()); // divisor is a nonzero literal
    }

    #[test]
    fn float_rejected() {
        let r = report("obj.count * 1.5", Mode::Cache);
        assert_eq!(r.errors, vec![CheckError::FloatLiteral { value: 1.5 }]);
    }

    #[test]
    fn cross_mode_feature_rejected() {
        let r = report("cwnd + 1", Mode::Cache);
        assert!(matches!(r.errors[0], CheckError::FeatureUnavailable { .. }));
        let r = report("obj.count + 1", Mode::Kernel);
        assert!(matches!(r.errors[0], CheckError::FeatureUnavailable { .. }));
        // `now` is legal in both
        assert!(report("now", Mode::Cache).ok());
        assert!(report("now", Mode::Kernel).ok());
    }

    #[test]
    fn lb_mode_checks_availability_and_divisors() {
        // the full Lb catalog is legal in Lb mode
        let r = report(
            "server.queue_len * 100 / server.speed + server.inflight * req.size \
             + server.ewma_latency / 1000 + now % 7",
            Mode::Lb,
        );
        assert!(r.ok(), "{:?}", r.errors);
        assert!(r.warnings.is_empty(), "speed >= 1 and literals are clean divisors");
        // cross-mode features rejected in all directions
        assert!(!report("obj.count", Mode::Lb).ok());
        assert!(!report("cwnd", Mode::Lb).ok());
        assert!(!report("server.queue_len", Mode::Cache).ok());
        assert!(!report("req.size", Mode::Kernel).ok());
        // possibly-zero lb divisors warn
        let r = report("req.size / server.queue_len", Mode::Lb);
        assert!(r.ok());
        assert_eq!(r.warnings.len(), 1);
        let r = report("req.size / max(server.inflight, 1)", Mode::Lb);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn unguarded_division_warns() {
        let r = report("cwnd / inflight", Mode::Kernel); // inflight can be 0
        assert!(r.ok());
        assert_eq!(r.warnings.len(), 1);
        let r = report("cwnd / max(inflight, 1)", Mode::Kernel);
        assert!(r.warnings.is_empty());
        let r = report("cwnd / mss", Mode::Kernel); // mss >= 1
        assert!(r.warnings.is_empty());
        let r = report("cwnd / min_rtt", Mode::Kernel); // min_rtt >= 1
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn guard_analysis_shapes() {
        assert!(divisor_nonzero(&parse("3").unwrap()));
        assert!(divisor_nonzero(&parse("-3").unwrap()));
        assert!(!divisor_nonzero(&parse("0").unwrap()));
        assert!(divisor_nonzero(&parse("max(loss, 1)").unwrap()));
        assert!(divisor_nonzero(&parse("1 + abs(cwnd - prev_cwnd)").unwrap()));
        assert!(divisor_nonzero(&parse("clamp(srtt, 1, 1000)").unwrap()));
        assert!(divisor_nonzero(&parse("mss * 2").unwrap()));
        assert!(!divisor_nonzero(&parse("loss").unwrap()));
        assert!(!divisor_nonzero(&parse("abs(loss)").unwrap()));
        assert!(!divisor_nonzero(&parse("min(mss, loss)").unwrap()));
    }

    #[test]
    fn size_budget_enforced() {
        let big = (0..300).map(|_| "1").collect::<Vec<_>>().join(" + ");
        let r = check_with_warnings(&parse(&big).unwrap(), Mode::Cache, 100, DEFAULT_MAX_DEPTH);
        assert!(matches!(r.errors[0], CheckError::TooLarge { .. }));
    }

    #[test]
    fn depth_budget_enforced() {
        let deep = format!("{}1{}", "abs(".repeat(25), ")".repeat(25));
        let r = check_with_warnings(&parse(&deep).unwrap(), Mode::Cache, DEFAULT_MAX_SIZE, 10);
        assert!(matches!(r.errors[0], CheckError::TooDeep { .. }));
    }

    #[test]
    fn all_errors_collected() {
        let r = report("obj.count * 1.5 + cwnd / 0.25", Mode::Cache);
        // two floats and one cross-mode feature
        assert_eq!(r.errors.len(), 3);
    }

    #[test]
    fn stderr_renders() {
        let r = report("cwnd / inflight", Mode::Kernel);
        assert!(r.stderr().contains("warning: divisor may be zero"));
    }
}
