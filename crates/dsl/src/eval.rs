//! Tree-walking interpreter with totalized `i64` semantics.
//!
//! These semantics are the *specification* for the language: the kbpf
//! compiler + VM must agree with this interpreter bit-for-bit on every
//! verified program (a property-tested invariant in `policysmith-kbpf`).
//!
//! * `+`, `-`, `*`, `neg`, `abs` **saturate** at the `i64` boundaries.
//! * `/`, `%` return [`EvalError::DivByZero`] on a zero divisor;
//!   `i64::MIN / -1` (and the corresponding `%`) saturate instead of
//!   trapping.
//! * `<<` saturates via 128-bit intermediates; both shifts clamp their
//!   amount into `[0, 63]` (negative amounts shift by 0).
//! * Comparisons and logic produce `0`/`1`; `&&`/`||` short-circuit.
//! * `clamp(x, lo, hi)` is `max(lo, min(x, hi))` — well-defined even when
//!   `lo > hi` (then it returns `lo`).
//! * Evaluating a float literal is unreachable for checked programs; the
//!   interpreter truncates it (documented, deterministic) so that even
//!   unchecked candidates cannot crash the host.

use crate::ast::{BinOp, Expr};
use crate::env::FeatureEnv;
use crate::error::EvalError;

/// Evaluate `e` against `env`.
pub fn eval(e: &Expr, env: &impl FeatureEnv) -> Result<i64, EvalError> {
    match e {
        Expr::Int(v) => Ok(*v),
        Expr::Float(v) => Ok(*v as i64),
        Expr::Feat(f) => Ok(env.feature(*f)),
        Expr::Neg(a) => Ok(eval(a, env)?.saturating_neg()),
        Expr::Not(a) => Ok((eval(a, env)? == 0) as i64),
        Expr::Abs(a) => Ok(eval(a, env)?.saturating_abs()),
        Expr::Bin(op, a, b) => bin(*op, a, b, env),
        Expr::Cmp(op, a, b) => Ok(op.apply(eval(a, env)?, eval(b, env)?)),
        Expr::If(c, t, f) => {
            if eval(c, env)? != 0 {
                eval(t, env)
            } else {
                eval(f, env)
            }
        }
        Expr::Clamp(x, lo, hi) => {
            let x = eval(x, env)?;
            let lo = eval(lo, env)?;
            let hi = eval(hi, env)?;
            Ok(clamp(x, lo, hi))
        }
    }
}

/// `max(lo, min(x, hi))` — the language's clamp semantics.
pub fn clamp(x: i64, lo: i64, hi: i64) -> i64 {
    lo.max(x.min(hi))
}

/// Saturating left shift with the amount clamped to `[0, 63]`.
pub fn shl_sat(a: i64, amt: i64) -> i64 {
    let amt = amt.clamp(0, 63) as u32;
    let wide = (a as i128) << amt;
    if wide > i64::MAX as i128 {
        i64::MAX
    } else if wide < i64::MIN as i128 {
        i64::MIN
    } else {
        wide as i64
    }
}

/// Arithmetic right shift with the amount clamped to `[0, 63]`.
pub fn shr_arith(a: i64, amt: i64) -> i64 {
    a >> amt.clamp(0, 63) as u32
}

/// Saturating division; caller has excluded a zero divisor.
pub fn div_sat(a: i64, b: i64) -> i64 {
    if a == i64::MIN && b == -1 {
        i64::MAX
    } else {
        a / b
    }
}

/// Saturating remainder; caller has excluded a zero divisor.
pub fn rem_sat(a: i64, b: i64) -> i64 {
    if a == i64::MIN && b == -1 {
        0
    } else {
        a % b
    }
}

fn bin(op: BinOp, a: &Expr, b: &Expr, env: &impl FeatureEnv) -> Result<i64, EvalError> {
    // Short-circuit logic first.
    match op {
        BinOp::And => {
            return Ok(if eval(a, env)? == 0 { 0 } else { (eval(b, env)? != 0) as i64 });
        }
        BinOp::Or => {
            return Ok(if eval(a, env)? != 0 { 1 } else { (eval(b, env)? != 0) as i64 });
        }
        _ => {}
    }
    let x = eval(a, env)?;
    let y = eval(b, env)?;
    Ok(match op {
        BinOp::Add => x.saturating_add(y),
        BinOp::Sub => x.saturating_sub(y),
        BinOp::Mul => x.saturating_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(EvalError::DivByZero);
            }
            div_sat(x, y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(EvalError::DivByZero);
            }
            rem_sat(x, y)
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::Shl => shl_sat(x, y),
        BinOp::Shr => shr_arith(x, y),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MapEnv;
    use crate::feature::Feature;
    use crate::parser::parse;

    fn run(src: &str) -> Result<i64, EvalError> {
        eval(&parse(src).unwrap(), &MapEnv::new())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3").unwrap(), 7);
        assert_eq!(run("10 / 3").unwrap(), 3);
        assert_eq!(run("-10 / 3").unwrap(), -3); // truncating like C
        assert_eq!(run("10 % 3").unwrap(), 1);
        assert_eq!(run("-10 % 3").unwrap(), -1);
    }

    #[test]
    fn saturation() {
        assert_eq!(run("9223372036854775807 + 1").unwrap(), i64::MAX);
        assert_eq!(run("-9223372036854775807 - 2").unwrap(), i64::MIN);
        assert_eq!(run("9223372036854775807 * 2").unwrap(), i64::MAX);
        assert_eq!(
            eval(&Expr::Neg(Box::new(Expr::Int(i64::MIN))), &MapEnv::new()).unwrap(),
            i64::MAX
        );
        assert_eq!(
            eval(&Expr::Abs(Box::new(Expr::Int(i64::MIN))), &MapEnv::new()).unwrap(),
            i64::MAX
        );
    }

    #[test]
    fn min_div_minus_one_saturates() {
        let e = Expr::bin(BinOp::Div, Expr::Int(i64::MIN), Expr::Int(-1));
        assert_eq!(eval(&e, &MapEnv::new()).unwrap(), i64::MAX);
        let e = Expr::bin(BinOp::Rem, Expr::Int(i64::MIN), Expr::Int(-1));
        assert_eq!(eval(&e, &MapEnv::new()).unwrap(), 0);
    }

    #[test]
    fn div_by_zero_faults() {
        assert_eq!(run("1 / 0"), Err(EvalError::DivByZero));
        assert_eq!(run("1 % 0"), Err(EvalError::DivByZero));
        // ... but only if reached
        assert_eq!(run("if(0, 1 / 0, 5)").unwrap(), 5);
        assert_eq!(run("0 && 1 / 0").unwrap(), 0);
        assert_eq!(run("1 || 1 / 0").unwrap(), 1);
    }

    #[test]
    fn shifts() {
        assert_eq!(run("1 << 4").unwrap(), 16);
        assert_eq!(run("256 >> 4").unwrap(), 16);
        assert_eq!(run("-16 >> 2").unwrap(), -4); // arithmetic
        assert_eq!(run("1 << 100").unwrap(), i64::MIN.saturating_abs()); // clamped to 63 then saturates
        assert_eq!(run("1 << 63").unwrap(), i64::MAX); // saturating, not wrapping
        assert_eq!(run("4 << -5").unwrap(), 4); // negative amount = no shift
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("3 < 4").unwrap(), 1);
        assert_eq!(run("(3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5)").unwrap(), 3);
        assert_eq!(run("!5").unwrap(), 0);
        assert_eq!(run("!0").unwrap(), 1);
        assert_eq!(run("2 && 3").unwrap(), 1);
        assert_eq!(run("0 || 7").unwrap(), 1);
        assert_eq!(run("0 || 0").unwrap(), 0);
    }

    #[test]
    fn ternary_and_clamp() {
        assert_eq!(run("5 > 3 ? 10 : 20").unwrap(), 10);
        assert_eq!(run("clamp(15, 0, 10)").unwrap(), 10);
        assert_eq!(run("clamp(-5, 0, 10)").unwrap(), 0);
        assert_eq!(run("clamp(5, 0, 10)").unwrap(), 5);
        // inverted bounds: lo wins
        assert_eq!(run("clamp(5, 10, 0)").unwrap(), 10);
    }

    #[test]
    fn features_read_from_env() {
        let env = MapEnv::new()
            .with(Feature::ObjCount, 7)
            .with(Feature::ObjSize, 100)
            .with(Feature::SizesPct(75), 80);
        let e = parse("if(obj.size > sizes.p75, -25, 10) + obj.count").unwrap();
        assert_eq!(eval(&e, &env).unwrap(), -25 + 7);
    }

    #[test]
    fn float_truncates_when_forced() {
        // Unchecked candidates must still be safe to run.
        assert_eq!(run("3.9").unwrap(), 3);
    }
}
