//! Recursive-descent parser for heuristic source.
//!
//! Grammar (C-like precedence, lowest first):
//!
//! ```text
//! expr    := or ('?' expr ':' expr)?            // right-assoc ternary
//! or      := and ('||' and)*
//! and     := eq ('&&' eq)*
//! eq      := rel (('==' | '!=') rel)*
//! rel     := shift (('<' | '<=' | '>' | '>=') shift)*
//! shift   := add (('<<' | '>>') add)*
//! add     := mul (('+' | '-') mul)*
//! mul     := unary (('*' | '/' | '%') unary)*
//! unary   := ('-' | '!')* primary
//! primary := INT | FLOAT | '(' expr ')'
//!          | ('min'|'max'|'clamp'|'abs'|'if') '(' args ')'
//!          | path ('[' INT ']')?
//! path    := IDENT ('.' IDENT)*
//! ```
//!
//! Feature names resolve eagerly: `obj.count`, `ages.p75`, `hist_rtt[3]`, …
//! Unknown identifiers are parse errors (the "hallucinated API" fault class).

use crate::ast::{BinOp, CmpOp, Expr};
use crate::error::ParseError;
use crate::feature::Feature;
use crate::lexer::{lex, Token, TokenKind};

/// Maximum expression nesting the parser will accept. Protects against both
/// stack overflow and pathological generated candidates.
pub const MAX_PARSE_DEPTH: usize = 64;

/// Parse a complete heuristic expression. The whole input must be consumed.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0, depth: 0 };
    let e = p.expr()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::UnexpectedToken {
            pos: t.pos,
            found: t.kind.describe(),
            expected: "end of input",
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.i)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &'static str) -> Result<Token, ParseError> {
        match self.bump() {
            Some(t) if t.kind == kind => Ok(t),
            Some(t) => Err(ParseError::UnexpectedToken {
                pos: t.pos,
                found: t.kind.describe(),
                expected: what,
            }),
            None => Err(ParseError::UnexpectedEof { expected: what }),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            let pos = self.peek().map(|t| t.pos).unwrap_or(0);
            return Err(ParseError::TooDeep { pos });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let cond = self.or()?;
        let r = if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon, "`:`")?;
            let els = self.expr()?;
            Expr::ite(cond, then, els)
        } else {
            cond
        };
        self.leave();
        Ok(r)
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and()?;
            e = Expr::bin(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            e = Expr::bin(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::EqEq) => CmpOp::Eq,
                Some(TokenKind::Ne) => CmpOp::Ne,
                _ => break,
            };
            self.i += 1;
            let rhs = self.relational()?;
            e = Expr::cmp(op, e, rhs);
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Lt) => CmpOp::Lt,
                Some(TokenKind::Le) => CmpOp::Le,
                Some(TokenKind::Gt) => CmpOp::Gt,
                Some(TokenKind::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.i += 1;
            let rhs = self.shift()?;
            e = Expr::cmp(op, e, rhs);
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Shl) => BinOp::Shl,
                Some(TokenKind::Shr) => BinOp::Shr,
                _ => break,
            };
            self.i += 1;
            let rhs = self.additive()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.i += 1;
            let rhs = self.multiplicative()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Rem,
                _ => break,
            };
            self.i += 1;
            let rhs = self.unary()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = if self.eat(&TokenKind::Minus) {
            // `-5` folds to a literal so the generator's constant mutations
            // see negative constants as single nodes.
            match self.unary()? {
                Expr::Int(v) => Ok(Expr::Int(v.checked_neg().unwrap_or(i64::MAX))),
                Expr::Float(v) => Ok(Expr::Float(-v)),
                e => Ok(Expr::Neg(Box::new(e))),
            }
        } else if self.eat(&TokenKind::Bang) {
            Ok(Expr::Not(Box::new(self.unary()?)))
        } else {
            self.primary()
        };
        self.leave();
        r
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = match self.bump() {
            Some(t) => t,
            None => return Err(ParseError::UnexpectedEof { expected: "an expression" }),
        };
        match t.kind {
            TokenKind::Int(text) => text
                .parse::<i64>()
                .map(Expr::Int)
                .map_err(|_| ParseError::IntOutOfRange { pos: t.pos, text }),
            TokenKind::Float(text) => {
                // f64 parse of digits.digits cannot fail
                Ok(Expr::Float(text.parse::<f64>().unwrap()))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(first) => self.ident_tail(t.pos, first),
            other => Err(ParseError::UnexpectedToken {
                pos: t.pos,
                found: other.describe(),
                expected: "an expression",
            }),
        }
    }

    /// Parse what follows an initial identifier: an intrinsic call, an
    /// indexed history feature, or a dotted feature path.
    fn ident_tail(&mut self, pos: usize, first: String) -> Result<Expr, ParseError> {
        // Intrinsic call?
        if self.peek().map(|t| &t.kind) == Some(&TokenKind::LParen) {
            let arity = match first.as_str() {
                "abs" => 1,
                "min" | "max" => 2,
                "clamp" | "if" => 3,
                _ => return Err(ParseError::UnknownIdentifier { pos, name: format!("{first}()") }),
            };
            self.i += 1; // consume '('
            let mut args = Vec::new();
            if self.peek().map(|t| &t.kind) != Some(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "`)`")?;
            if args.len() != arity {
                return Err(ParseError::BadArity {
                    pos,
                    func: first,
                    expected: arity,
                    got: args.len(),
                });
            }
            let mut it = args.into_iter();
            return Ok(match first.as_str() {
                "abs" => Expr::Abs(Box::new(it.next().unwrap())),
                "min" => Expr::bin(BinOp::Min, it.next().unwrap(), it.next().unwrap()),
                "max" => Expr::bin(BinOp::Max, it.next().unwrap(), it.next().unwrap()),
                "clamp" => {
                    let (a, b, c) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
                    Expr::Clamp(Box::new(a), Box::new(b), Box::new(c))
                }
                "if" => {
                    let (a, b, c) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
                    Expr::ite(a, b, c)
                }
                _ => unreachable!(),
            });
        }

        // Indexed history feature?
        if self.peek().map(|t| &t.kind) == Some(&TokenKind::LBracket) {
            self.i += 1;
            let idx_tok = self.bump().ok_or(ParseError::UnexpectedEof { expected: "an index" })?;
            let idx = match &idx_tok.kind {
                TokenKind::Int(s) => s
                    .parse::<u8>()
                    .map_err(|_| ParseError::BadParam { pos: idx_tok.pos, name: first.clone() })?,
                other => {
                    return Err(ParseError::UnexpectedToken {
                        pos: idx_tok.pos,
                        found: other.describe(),
                        expected: "an integer index",
                    })
                }
            };
            self.expect(TokenKind::RBracket, "`]`")?;
            let feat = match first.as_str() {
                "hist_rtt" => Feature::HistRtt(idx),
                "hist_delivered" => Feature::HistDelivered(idx),
                "hist_loss" => Feature::HistLoss(idx),
                "hist_cwnd" => Feature::HistCwnd(idx),
                "hist_qdelay" => Feature::HistQdelay(idx),
                _ => {
                    return Err(ParseError::UnknownIdentifier { pos, name: format!("{first}[..]") })
                }
            };
            if !feat.param_in_range() {
                return Err(ParseError::BadParam { pos, name: feat.name() });
            }
            return Ok(Expr::Feat(feat));
        }

        // Dotted path.
        let mut path = vec![first];
        while self.eat(&TokenKind::Dot) {
            match self.bump() {
                Some(Token { kind: TokenKind::Ident(seg), .. }) => path.push(seg),
                Some(t) => {
                    return Err(ParseError::UnexpectedToken {
                        pos: t.pos,
                        found: t.kind.describe(),
                        expected: "an identifier after `.`",
                    })
                }
                None => {
                    return Err(ParseError::UnexpectedEof { expected: "an identifier after `.`" })
                }
            }
        }
        let joined = path.join(".");
        match resolve_path(&path) {
            Some(f) => {
                if !f.param_in_range() {
                    return Err(ParseError::BadParam { pos, name: joined });
                }
                Ok(Expr::Feat(f))
            }
            None => Err(ParseError::UnknownIdentifier { pos, name: joined }),
        }
    }
}

/// Resolve a dotted path to a feature, if any.
fn resolve_path(path: &[String]) -> Option<Feature> {
    use Feature::*;
    let segs: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
    Some(match segs.as_slice() {
        ["now"] => Now,
        ["obj", "count"] => ObjCount,
        ["obj", "last_access"] => ObjLastAccess,
        ["obj", "insert_time"] => ObjInsertTime,
        ["obj", "size"] => ObjSize,
        ["obj", "age"] => ObjAge,
        ["obj", "time_in_cache"] => ObjTimeInCache,
        ["hist", "contains"] => HistContains,
        ["hist", "count"] => HistCount,
        ["hist", "age_at_evict"] => HistAgeAtEvict,
        ["hist", "time_since_evict"] => HistTimeSinceEvict,
        ["cache", "objects"] => CacheObjects,
        ["cache", "used_bytes"] => CacheUsedBytes,
        ["cache", "capacity"] => CacheCapacity,
        ["cwnd"] => Cwnd,
        ["prev_cwnd"] => PrevCwnd,
        ["min_rtt"] => MinRttUs,
        ["srtt"] => SrttUs,
        ["last_rtt"] => LastRttUs,
        ["inflight_bytes"] => InflightBytes,
        ["inflight"] => InflightPkts,
        ["mss"] => Mss,
        ["delivered"] => DeliveredBytes,
        ["delivery_rate"] => DeliveryRateBps,
        ["loss"] => LossEvent,
        ["acked"] => AckedBytes,
        ["ssthresh"] => Ssthresh,
        ["server", "queue_len"] => ServerQueueLen,
        ["server", "ewma_latency"] => ServerEwmaLatency,
        ["server", "speed"] => ServerSpeed,
        ["server", "inflight"] => ServerInflight,
        ["server", "work_left"] => ServerWorkLeft,
        ["req", "size"] => ReqSize,
        ["pkt", "sojourn"] => PktSojournUs,
        ["pkt", "size"] => PktSize,
        ["q", "bytes"] => QueueBytes,
        ["q", "pkts"] => QueuePkts,
        ["q", "capacity"] => QueueCapacityBytes,
        ["q", "drain_rate"] => DrainRateBps,
        ["q", "ewma_sojourn"] => SojournEwmaUs,
        ["aqm", "since_drop"] => SinceLastDropUs,
        ["aqm", "drops"] => AqmDrops,
        [table @ ("counts" | "ages" | "sizes"), p] => {
            let pct: u8 = p.strip_prefix('p')?.parse().ok()?;
            match *table {
                "counts" => CountsPct(pct),
                "ages" => AgesPct(pct),
                _ => SizesPct(pct),
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp, Expr};
    use crate::feature::Feature;

    #[test]
    fn precedence_mul_over_add() {
        let e = parse("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Add, Expr::Int(1), Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Int(3)))
        );
    }

    #[test]
    fn precedence_add_over_shift_over_rel() {
        // C semantics: a << b + c parses as a << (b + c)
        let e = parse("1 << 2 + 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Shl, Expr::Int(1), Expr::bin(BinOp::Add, Expr::Int(2), Expr::Int(3)))
        );
        // and a << b < c parses as (a << b) < c
        let e = parse("1 << 2 < 3").unwrap();
        assert_eq!(
            e,
            Expr::cmp(CmpOp::Lt, Expr::bin(BinOp::Shl, Expr::Int(1), Expr::Int(2)), Expr::Int(3))
        );
    }

    #[test]
    fn ternary_right_assoc() {
        let e = parse("1 ? 2 : 3 ? 4 : 5").unwrap();
        assert_eq!(
            e,
            Expr::ite(
                Expr::Int(1),
                Expr::Int(2),
                Expr::ite(Expr::Int(3), Expr::Int(4), Expr::Int(5))
            )
        );
    }

    #[test]
    fn features_resolve() {
        assert_eq!(parse("obj.count").unwrap(), Expr::feat(Feature::ObjCount));
        assert_eq!(parse("ages.p75").unwrap(), Expr::feat(Feature::AgesPct(75)));
        assert_eq!(parse("hist_rtt[3]").unwrap(), Expr::feat(Feature::HistRtt(3)));
        assert_eq!(parse("min_rtt").unwrap(), Expr::feat(Feature::MinRttUs));
        assert_eq!(parse("cache.used_bytes").unwrap(), Expr::feat(Feature::CacheUsedBytes));
        assert_eq!(parse("server.queue_len").unwrap(), Expr::feat(Feature::ServerQueueLen));
        assert_eq!(parse("server.ewma_latency").unwrap(), Expr::feat(Feature::ServerEwmaLatency));
        assert_eq!(parse("server.speed").unwrap(), Expr::feat(Feature::ServerSpeed));
        assert_eq!(parse("server.inflight").unwrap(), Expr::feat(Feature::ServerInflight));
        assert_eq!(parse("server.work_left").unwrap(), Expr::feat(Feature::ServerWorkLeft));
        assert_eq!(parse("req.size").unwrap(), Expr::feat(Feature::ReqSize));
    }

    #[test]
    fn intrinsics() {
        assert_eq!(parse("min(1, 2)").unwrap(), Expr::bin(BinOp::Min, Expr::Int(1), Expr::Int(2)));
        assert_eq!(
            parse("clamp(cwnd, 2, 100)").unwrap(),
            Expr::Clamp(
                Box::new(Expr::feat(Feature::Cwnd)),
                Box::new(Expr::Int(2)),
                Box::new(Expr::Int(100))
            )
        );
        assert_eq!(
            parse("if(1, 2, 3)").unwrap(),
            Expr::ite(Expr::Int(1), Expr::Int(2), Expr::Int(3))
        );
        assert_eq!(parse("abs(-4)").unwrap(), Expr::Abs(Box::new(Expr::Int(-4))));
    }

    #[test]
    fn negative_literal_folds() {
        assert_eq!(parse("-42").unwrap(), Expr::Int(-42));
        assert_eq!(parse("1 - -2").unwrap(), Expr::bin(BinOp::Sub, Expr::Int(1), Expr::Int(-2)));
    }

    #[test]
    fn float_literal_parses_but_is_float_node() {
        assert_eq!(parse("0.75").unwrap(), Expr::Float(0.75));
        assert!(parse("ages.p75 * 0.5").unwrap().contains_float());
    }

    #[test]
    fn unknown_identifier_is_error() {
        assert!(matches!(parse("obj.weight"), Err(ParseError::UnknownIdentifier { .. })));
        assert!(matches!(parse("frobnicate(1)"), Err(ParseError::UnknownIdentifier { .. })));
        assert!(matches!(parse("foo[1]"), Err(ParseError::UnknownIdentifier { .. })));
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(parse("min(1)"), Err(ParseError::BadArity { .. })));
        assert!(matches!(parse("abs(1, 2)"), Err(ParseError::BadArity { .. })));
        assert!(matches!(parse("clamp(1, 2)"), Err(ParseError::BadArity { .. })));
    }

    #[test]
    fn param_range_errors() {
        assert!(matches!(
            parse("ages.p100"),
            Err(ParseError::UnknownIdentifier { .. }) | Err(ParseError::BadParam { .. })
        ));
        assert!(matches!(parse("hist_rtt[10]"), Err(ParseError::BadParam { .. })));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(matches!(parse("1 + 2 3"), Err(ParseError::UnexpectedToken { .. })));
        assert!(matches!(parse("1 +"), Err(ParseError::UnexpectedEof { .. })));
    }

    #[test]
    fn depth_limit() {
        let src = format!("{}1{}", "(".repeat(200), ")".repeat(200));
        assert!(matches!(parse(&src), Err(ParseError::TooDeep { .. })));
    }

    #[test]
    fn listing1_style_fragment() {
        // A fragment shaped like the paper's Listing 1.
        let src = "obj.count * 20 - obj.age / 300 - obj.size / 500 \
                   + if(hist.contains, hist.count * 15 + hist.age_at_evict / 150, -40) \
                   + if(obj.last_access < ages.p75, -30, 0) \
                   + if(obj.size > sizes.p75, -25, 10) \
                   + if(obj.count > counts.p70, 50, -5)";
        let e = parse(src).unwrap();
        assert!(e.features().contains(&Feature::AgesPct(75)));
        assert!(e.features().contains(&Feature::CountsPct(70)));
        assert!(e.features().contains(&Feature::HistContains));
    }
}
