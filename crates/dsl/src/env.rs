//! Feature environments: how an executing heuristic reads its context.
//!
//! The cache template host and the congestion-control harness both implement
//! [`FeatureEnv`]; a simple [`MapEnv`] is provided for tests, docs, and the
//! generator's quick candidate sanity-probes.

use crate::feature::Feature;
use std::collections::HashMap;

/// Provider of feature values at evaluation time.
///
/// Implementations must be *total*: a feature that is semantically absent
/// (e.g. history metadata for an object never evicted) returns a documented
/// default rather than failing, matching how the paper's template presents
/// features to generated code.
pub trait FeatureEnv {
    /// Current value of `f`.
    fn feature(&self, f: Feature) -> i64;
}

/// A plain map-backed environment. Unset features read as 0.
#[derive(Debug, Clone, Default)]
pub struct MapEnv {
    values: HashMap<Feature, i64>,
}

impl MapEnv {
    /// Build an empty environment (all features read as 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `f` to `v`, returning `self` for chaining.
    pub fn with(mut self, f: Feature, v: i64) -> Self {
        self.set(f, v);
        self
    }

    /// Set `f` to `v`.
    pub fn set(&mut self, f: Feature, v: i64) {
        self.values.insert(f, v);
    }
}

impl FeatureEnv for MapEnv {
    fn feature(&self, f: Feature) -> i64 {
        self.values.get(&f).copied().unwrap_or(0)
    }
}

/// An environment that returns the midpoint of each feature's declared
/// range: used by the generator to cheaply smoke-test candidates before
/// paying for a full evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MidpointEnv;

impl FeatureEnv for MidpointEnv {
    fn feature(&self, f: Feature) -> i64 {
        let (lo, hi) = f.range();
        lo + (hi - lo) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_env_defaults_to_zero() {
        let env = MapEnv::new().with(Feature::ObjSize, 512);
        assert_eq!(env.feature(Feature::ObjSize), 512);
        assert_eq!(env.feature(Feature::ObjCount), 0);
    }

    #[test]
    fn midpoint_env_within_range() {
        for f in [Feature::Mss, Feature::ObjSize, Feature::HistContains, Feature::Cwnd] {
            let (lo, hi) = f.range();
            let v = MidpointEnv.feature(f);
            assert!(v >= lo && v <= hi);
        }
    }
}
