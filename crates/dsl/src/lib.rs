//! # policysmith-dsl — the heuristic expression language
//!
//! PolicySmith candidates are *programs*. This crate defines the small,
//! integer-only expression language in which both case studies' heuristics
//! are written:
//!
//! * **Cache eviction** (§4 of the paper): a `priority()` function over the
//!   Table-1 feature set (per-object metadata, percentile aggregates over the
//!   resident set, and eviction history). Evaluated by the tree-walking
//!   [`eval`] interpreter inside the cache simulator's template host.
//! * **Congestion control** (§5): a `cong_control()` function over
//!   kernel-visible state (cwnd, RTT estimates, inflight, …) plus the
//!   10-interval smoothed *history arrays*. Lowered to `kbpf` bytecode by the
//!   `policysmith-kbpf` crate and executed only after verification.
//!
//! ## Why integer-only?
//!
//! The Linux kernel forbids floating point on the hot path (§5 of the paper
//! lists float usage as the single most common generator error). We make the
//! same choice end-to-end: all programs compute over `i64` with saturating
//! arithmetic, so the DSL interpreter and the kbpf VM agree bit-for-bit.
//! Float *literals* are still lexable and parseable — they become
//! [`Expr::Float`] nodes which the [typechecker](check) rejects — because the
//! fault-injection path of the mock generator must be able to produce the
//! same non-conforming programs a real LLM does.
//!
//! ## Defined arithmetic
//!
//! Every operator has a total, deterministic semantics shared by the
//! interpreter and the VM (see [`eval`] for details): `+ - *` saturate,
//! `/ %` fault on a zero divisor (a runtime candidate failure in userspace,
//! a verifier rejection in kernel mode), shifts clamp their amount to
//! `[0, 63]`, and comparisons/logic produce `0`/`1`.
//!
//! ```
//! use policysmith_dsl::{parse, check, eval, Mode, env::MapEnv, Feature};
//!
//! let expr = parse("obj.count * 20 - obj.age / 300").unwrap();
//! check(&expr, Mode::Cache).unwrap();
//! let mut env = MapEnv::default();
//! env.set(Feature::ObjCount, 7);
//! env.set(Feature::ObjAge, 900);
//! assert_eq!(eval(&expr, &env).unwrap(), 7 * 20 - 3);
//! ```

pub mod ast;
pub mod check;
pub mod env;
pub mod error;
pub mod eval;
pub mod feature;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod simplify;

pub use ast::{BinOp, CmpOp, Expr};
pub use check::{check, check_with_warnings, CheckReport, Warning};
pub use env::FeatureEnv;
pub use error::{CheckError, EvalError, ParseError};
pub use eval::eval;
pub use feature::{Feature, Mode};
pub use parser::parse;
pub use printer::to_source;
pub use simplify::simplify;
