//! # policysmith-dsl — the heuristic expression language
//!
//! PolicySmith candidates are *programs*. This crate defines the small,
//! integer-only expression language in which all three case studies'
//! heuristics are written:
//!
//! * **Cache eviction** (§4 of the paper): a `priority()` function over the
//!   Table-1 feature set (per-object metadata, percentile aggregates over the
//!   resident set, and eviction history). Evaluated by the tree-walking
//!   [`eval`](eval()) interpreter inside the cache simulator's template host.
//! * **Congestion control** (§5): a `cong_control()` function over
//!   kernel-visible state (cwnd, RTT estimates, inflight, …) plus the
//!   10-interval smoothed *history arrays*. Lowered to `kbpf` bytecode by the
//!   `policysmith-kbpf` crate and executed only after verification.
//! * **Load balancing** ([`Mode::Lb`], the third workload beyond the
//!   paper): a `score(server, req)` function evaluated once per server at
//!   dispatch time inside `policysmith-lbsim`'s template host; the request
//!   is sent to the lowest-scoring server (argmin).
//!
//! ## `Mode::Lb` feature catalog
//!
//! | source syntax         | meaning                                             | range      |
//! |-----------------------|-----------------------------------------------------|------------|
//! | `now`                 | virtual time at dispatch, µs                        | `[0, 2^50]`|
//! | `server.queue_len`    | requests waiting in the server's FIFO queue         | `[0, 2^20]`|
//! | `server.ewma_latency` | EWMA of the server's recent response times, µs      | `[0, 2^32]`|
//! | `server.speed`        | server speed, work units per ms (never zero)        | `[1, 2^16]`|
//! | `server.inflight`     | unfinished requests assigned (queued + in service)  | `[0, 2^20]`|
//! | `req.size`            | service demand of the dispatched request (never 0)  | `[1, 2^32]`|
//!
//! `server.speed` and `req.size` have ranges excluding zero, so they are
//! checker-clean divisors — `server.queue_len * 1000 / server.speed` is the
//! canonical capacity-normalized load idiom. Dividing by `server.queue_len`,
//! `server.inflight`, or `server.ewma_latency` (zero on an idle/fresh
//! server) draws the usual `DivisorMayBeZero` warning, and the generator
//! learns the `max(.., 1)` guard from it.
//!
//! ## Why integer-only?
//!
//! The Linux kernel forbids floating point on the hot path (§5 of the paper
//! lists float usage as the single most common generator error). We make the
//! same choice end-to-end: all programs compute over `i64` with saturating
//! arithmetic, so the DSL interpreter and the kbpf VM agree bit-for-bit.
//! Float *literals* are still lexable and parseable — they become
//! [`Expr::Float`] nodes which the [typechecker](check()) rejects — because the
//! fault-injection path of the mock generator must be able to produce the
//! same non-conforming programs a real LLM does.
//!
//! ## Defined arithmetic
//!
//! Every operator has a total, deterministic semantics shared by the
//! interpreter and the VM (see [`eval`](eval()) for details): `+ - *` saturate,
//! `/ %` fault on a zero divisor (a runtime candidate failure in userspace,
//! a verifier rejection in kernel mode), shifts clamp their amount to
//! `[0, 63]`, and comparisons/logic produce `0`/`1`.
//!
//! ```
//! use policysmith_dsl::{parse, check, eval, Mode, env::MapEnv, Feature};
//!
//! let expr = parse("obj.count * 20 - obj.age / 300").unwrap();
//! check(&expr, Mode::Cache).unwrap();
//! let mut env = MapEnv::default();
//! env.set(Feature::ObjCount, 7);
//! env.set(Feature::ObjAge, 900);
//! assert_eq!(eval(&expr, &env).unwrap(), 7 * 20 - 3);
//! ```

pub mod ast;
pub mod check;
pub mod env;
pub mod error;
pub mod eval;
pub mod feature;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod simplify;

pub use ast::{BinOp, CmpOp, Expr};
pub use check::{check, check_with_warnings, CheckReport, Warning};
pub use env::FeatureEnv;
pub use error::{CheckError, EvalError, ParseError};
pub use eval::eval;
pub use feature::{Feature, Mode};
pub use parser::parse;
pub use printer::to_source;
pub use simplify::simplify;
