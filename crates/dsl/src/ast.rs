//! Abstract syntax of heuristic expressions.
//!
//! The language is deliberately small: integers, feature reads, arithmetic,
//! comparisons, boolean logic, conditionals and a few intrinsic functions.
//! That is enough to express every heuristic the paper discusses — the
//! LRU/LFU seeds, GDSF-style size-frequency tradeoffs, the evolved Listing 1,
//! and AIMD/CUBIC-flavoured window updates — while keeping both the kbpf
//! lowering and the mock generator's mutation operators simple.

use crate::feature::Feature;

/// Binary operators. Logical `And`/`Or` operate on truthiness (`x != 0`) and
/// produce `0`/`1`; everything else is `i64` arithmetic with the totalized
/// semantics documented in [`crate::eval`](crate::eval()).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Faults on a zero divisor.
    Div,
    /// Signed remainder. Faults on a zero divisor.
    Rem,
    Min,
    Max,
    /// Logical and (short-circuiting in the interpreter).
    And,
    /// Logical or (short-circuiting in the interpreter).
    Or,
    /// Left shift; amount clamped to `[0, 63]`, result saturating.
    Shl,
    /// Arithmetic right shift; amount clamped to `[0, 63]`.
    Shr,
}

impl BinOp {
    /// Source token for this operator (`Min`/`Max` print as calls instead).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Comparison operators; result is `0` or `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Source token for this comparison.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Apply the comparison.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        r as i64
    }
}

/// An expression tree. `Box`es keep the enum small; trees are immutable and
/// cheap to clone for the generator's mutation/crossover operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal — *always* a type error; exists so the generator can
    /// emit the paper's most common class of non-conforming code (§5.0.3).
    Float(f64),
    /// Feature (environment) read.
    Feat(Feature),
    /// Arithmetic negation (saturating).
    Neg(Box<Expr>),
    /// Logical not: `!x == (x == 0)`.
    Not(Box<Expr>),
    /// Absolute value (saturating).
    Abs(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing `0`/`1`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `if(cond, then, else)` — also printable as `cond ? then : else`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `clamp(x, lo, hi) == max(lo, min(x, hi))`.
    Clamp(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand constructor for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Shorthand constructor for a comparison node.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Shorthand constructor for a conditional node.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Shorthand constructor for a feature read.
    pub fn feat(f: Feature) -> Expr {
        Expr::Feat(f)
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Maximum nesting depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Feat(_) => 1,
            Expr::Neg(a) | Expr::Not(a) | Expr::Abs(a) => 1 + a.depth(),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => 1 + a.depth().max(b.depth()),
            Expr::If(a, b, c) | Expr::Clamp(a, b, c) => 1 + a.depth().max(b.depth()).max(c.depth()),
        }
    }

    /// Pre-order visit of every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Feat(_) => {}
            Expr::Neg(a) | Expr::Not(a) | Expr::Abs(a) => a.visit(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::If(a, b, c) | Expr::Clamp(a, b, c) => {
                a.visit(f);
                b.visit(f);
                c.visit(f);
            }
        }
    }

    /// Every distinct feature read anywhere in the tree.
    pub fn features(&self) -> Vec<Feature> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Feat(f) = e {
                if !out.contains(f) {
                    out.push(*f);
                }
            }
        });
        out
    }

    /// Does the tree contain a float literal anywhere?
    pub fn contains_float(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Float(_)) {
                found = true;
            }
        });
        found
    }

    /// Does the tree contain a division or remainder anywhere?
    pub fn contains_div(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Bin(BinOp::Div | BinOp::Rem, _, _)) {
                found = true;
            }
        });
        found
    }

    /// Get the `idx`-th node in pre-order (0 is the root). Used by the
    /// generator to pick a uniformly random subtree for mutation.
    pub fn get_subexpr(&self, idx: usize) -> Option<&Expr> {
        let mut i = 0;
        let mut found = None;
        self.visit(&mut |e| {
            if i == idx && found.is_none() {
                found = Some(e);
            }
            i += 1;
        });
        found
    }

    /// Return a copy of the tree with the `idx`-th pre-order node replaced
    /// by `new`. Returns the tree unchanged if `idx` is out of range.
    pub fn replace_subexpr(&self, idx: usize, new: &Expr) -> Expr {
        fn go(e: &Expr, idx: usize, new: &Expr, i: &mut usize) -> Expr {
            let me = *i;
            *i += 1;
            if me == idx {
                return new.clone();
            }
            match e {
                Expr::Int(_) | Expr::Float(_) | Expr::Feat(_) => e.clone(),
                Expr::Neg(a) => Expr::Neg(Box::new(go(a, idx, new, i))),
                Expr::Not(a) => Expr::Not(Box::new(go(a, idx, new, i))),
                Expr::Abs(a) => Expr::Abs(Box::new(go(a, idx, new, i))),
                Expr::Bin(op, a, b) => {
                    let a = go(a, idx, new, i);
                    let b = go(b, idx, new, i);
                    Expr::Bin(*op, Box::new(a), Box::new(b))
                }
                Expr::Cmp(op, a, b) => {
                    let a = go(a, idx, new, i);
                    let b = go(b, idx, new, i);
                    Expr::Cmp(*op, Box::new(a), Box::new(b))
                }
                Expr::If(a, b, c) => {
                    let a = go(a, idx, new, i);
                    let b = go(b, idx, new, i);
                    let c = go(c, idx, new, i);
                    Expr::If(Box::new(a), Box::new(b), Box::new(c))
                }
                Expr::Clamp(a, b, c) => {
                    let a = go(a, idx, new, i);
                    let b = go(b, idx, new, i);
                    let c = go(c, idx, new, i);
                    Expr::Clamp(Box::new(a), Box::new(b), Box::new(c))
                }
            }
        }
        let mut i = 0;
        go(self, idx, new, &mut i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;

    fn sample() -> Expr {
        // obj.count * 20 - obj.age / 300
        Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Mul, Expr::feat(Feature::ObjCount), Expr::Int(20)),
            Expr::bin(BinOp::Div, Expr::feat(Feature::ObjAge), Expr::Int(300)),
        )
    }

    #[test]
    fn size_and_depth() {
        let e = sample();
        assert_eq!(e.size(), 7);
        assert_eq!(e.depth(), 3);
        assert_eq!(Expr::Int(1).size(), 1);
        assert_eq!(Expr::Int(1).depth(), 1);
    }

    #[test]
    fn features_deduplicated() {
        let e = Expr::bin(BinOp::Add, Expr::feat(Feature::ObjCount), Expr::feat(Feature::ObjCount));
        assert_eq!(e.features(), vec![Feature::ObjCount]);
    }

    #[test]
    fn contains_checks() {
        assert!(sample().contains_div());
        assert!(!sample().contains_float());
        let f = Expr::bin(BinOp::Add, Expr::Float(0.5), Expr::Int(1));
        assert!(f.contains_float());
        assert!(!f.contains_div());
    }

    #[test]
    fn get_subexpr_preorder() {
        let e = sample();
        assert_eq!(e.get_subexpr(0), Some(&e));
        // pre-order: root(Sub)=0, Mul=1, ObjCount=2, 20=3, Div=4, ObjAge=5, 300=6
        assert_eq!(e.get_subexpr(3), Some(&Expr::Int(20)));
        assert_eq!(e.get_subexpr(6), Some(&Expr::Int(300)));
        assert_eq!(e.get_subexpr(7), None);
    }

    #[test]
    fn replace_subexpr_roundtrip() {
        let e = sample();
        let r = e.replace_subexpr(3, &Expr::Int(99));
        assert_eq!(r.get_subexpr(3), Some(&Expr::Int(99)));
        // everything else untouched
        assert_eq!(r.get_subexpr(6), Some(&Expr::Int(300)));
        // out-of-range replacement is identity
        assert_eq!(e.replace_subexpr(100, &Expr::Int(0)), e);
    }

    #[test]
    fn cmp_apply() {
        assert_eq!(CmpOp::Lt.apply(1, 2), 1);
        assert_eq!(CmpOp::Ge.apply(1, 2), 0);
        assert_eq!(CmpOp::Eq.apply(5, 5), 1);
        assert_eq!(CmpOp::Ne.apply(5, 5), 0);
    }
}
