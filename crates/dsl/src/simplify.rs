//! Constant folding and identity elimination.
//!
//! The generator's mutation operators routinely produce dead weight
//! (`x + 0`, `x * 1`, `if(1, a, b)`, fully-constant subtrees). Simplifying
//! keeps candidate programs small — which matters both for the size budget
//! of the checker and for the paper's interpretability argument (§6:
//! "LLMs can be tuned to produce simpler code").
//!
//! The rewrite is semantics-preserving with respect to [`crate::eval`](crate::eval()):
//! folding uses the interpreter's own saturating operations, and faulting
//! subexpressions (`1 / 0`) are left untouched rather than folded.

use crate::ast::{BinOp, Expr};
use crate::eval::{clamp, div_sat, rem_sat, shl_sat, shr_arith};

/// Simplify `e` bottom-up until a fixed point (at most a few passes).
pub fn simplify(e: &Expr) -> Expr {
    let mut cur = e.clone();
    for _ in 0..4 {
        let next = pass(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn pass(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Feat(_) => e.clone(),
        Expr::Neg(a) => {
            let a = pass(a);
            match a {
                Expr::Int(v) => Expr::Int(v.saturating_neg()),
                Expr::Neg(inner) => *inner,
                other => Expr::Neg(Box::new(other)),
            }
        }
        Expr::Not(a) => {
            let a = pass(a);
            match a {
                Expr::Int(v) => Expr::Int((v == 0) as i64),
                Expr::Not(inner) if is_boolean(&inner) => *inner,
                other => Expr::Not(Box::new(other)),
            }
        }
        Expr::Abs(a) => {
            let a = pass(a);
            match a {
                Expr::Int(v) => Expr::Int(v.saturating_abs()),
                Expr::Abs(inner) => Expr::Abs(inner),
                other => Expr::Abs(Box::new(other)),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = pass(a);
            let b = pass(b);
            fold_bin(*op, a, b)
        }
        Expr::Cmp(op, a, b) => {
            let a = pass(a);
            let b = pass(b);
            if let (Expr::Int(x), Expr::Int(y)) = (&a, &b) {
                return Expr::Int(op.apply(*x, *y));
            }
            Expr::cmp(*op, a, b)
        }
        Expr::If(c, t, f) => {
            let c = pass(c);
            let t = pass(t);
            let f = pass(f);
            match c {
                Expr::Int(v) => {
                    if v != 0 {
                        t
                    } else {
                        f
                    }
                }
                c => {
                    // Pruning identical branches drops the evaluation of `c`,
                    // which is only legal if `c` cannot fault.
                    if t == f && !c.contains_div() {
                        t
                    } else {
                        Expr::ite(c, t, f)
                    }
                }
            }
        }
        Expr::Clamp(x, lo, hi) => {
            let x = pass(x);
            let lo = pass(lo);
            let hi = pass(hi);
            if let (Expr::Int(a), Expr::Int(l), Expr::Int(h)) = (&x, &lo, &hi) {
                return Expr::Int(clamp(*a, *l, *h));
            }
            Expr::Clamp(Box::new(x), Box::new(lo), Box::new(hi))
        }
    }
}

/// Is the expression guaranteed to evaluate to 0 or 1?
fn is_boolean(e: &Expr) -> bool {
    matches!(e, Expr::Cmp(..) | Expr::Not(_) | Expr::Bin(BinOp::And | BinOp::Or, ..))
        || matches!(e, Expr::Int(0) | Expr::Int(1))
}

fn fold_bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    // Full constant folding (guarding faults).
    if let (Expr::Int(x), Expr::Int(y)) = (&a, &b) {
        let folded = match op {
            Add => Some(x.saturating_add(*y)),
            Sub => Some(x.saturating_sub(*y)),
            Mul => Some(x.saturating_mul(*y)),
            Div if *y != 0 => Some(div_sat(*x, *y)),
            Rem if *y != 0 => Some(rem_sat(*x, *y)),
            Min => Some((*x).min(*y)),
            Max => Some((*x).max(*y)),
            And => Some(((*x != 0) && (*y != 0)) as i64),
            Or => Some(((*x != 0) || (*y != 0)) as i64),
            Shl => Some(shl_sat(*x, *y)),
            Shr => Some(shr_arith(*x, *y)),
            _ => None,
        };
        if let Some(v) = folded {
            return Expr::Int(v);
        }
    }
    // Identities. Only fault-free rewrites: dropping a subtree is legal
    // because subtrees cannot fault unless they contain `/`/`%`, which we
    // conservatively keep.
    match (op, &a, &b) {
        (Add, Expr::Int(0), _) => return b,
        (Add, _, Expr::Int(0)) => return a,
        (Sub, _, Expr::Int(0)) => return a,
        (Mul, _, Expr::Int(1)) => return a,
        (Mul, Expr::Int(1), _) => return b,
        (Mul, Expr::Int(0), rhs) if !rhs.contains_div() => return Expr::Int(0),
        (Mul, lhs, Expr::Int(0)) if !lhs.contains_div() => return Expr::Int(0),
        (Div, _, Expr::Int(1)) => return a,
        (Shl | Shr, _, Expr::Int(0)) => return a,
        (Min | Max, x, y) if x == y => return a,
        _ => {}
    }
    Expr::bin(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MapEnv;
    use crate::eval::eval;
    use crate::feature::Feature;
    use crate::parser::parse;
    use crate::printer::to_source;

    fn simp(src: &str) -> String {
        to_source(&simplify(&parse(src).unwrap()))
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simp("1 + 2 * 3"), "7");
        assert_eq!(simp("min(3, max(1, 2))"), "2");
        assert_eq!(simp("clamp(50, 0, 10)"), "10");
        assert_eq!(simp("4 < 5"), "1");
        assert_eq!(simp("1 && 0"), "0");
        assert_eq!(simp("3 << 2"), "12");
    }

    #[test]
    fn identities() {
        assert_eq!(simp("obj.count + 0"), "obj.count");
        assert_eq!(simp("0 + obj.count"), "obj.count");
        assert_eq!(simp("obj.count * 1"), "obj.count");
        assert_eq!(simp("obj.count - 0"), "obj.count");
        assert_eq!(simp("obj.count / 1"), "obj.count");
        assert_eq!(simp("obj.count * 0"), "0");
        assert_eq!(simp("min(obj.age, obj.age)"), "obj.age");
    }

    #[test]
    fn branch_pruning() {
        assert_eq!(simp("if(1, obj.count, obj.size)"), "obj.count");
        assert_eq!(simp("if(0, obj.count, obj.size)"), "obj.size");
        assert_eq!(simp("if(obj.count, obj.size, obj.size)"), "obj.size");
        assert_eq!(simp("5 > 3 ? obj.age : now"), "obj.age");
    }

    #[test]
    fn faults_not_folded_away() {
        // 1/0 must stay a fault, not become a constant or vanish.
        assert_eq!(simp("1 / 0"), "1 / 0");
        assert_eq!(simp("(1 / 0) * 0"), "1 / 0 * 0");
        assert!(eval(&simplify(&parse("(1 / 0) * 0").unwrap()), &MapEnv::new()).is_err());
    }

    #[test]
    fn double_negation() {
        assert_eq!(simp("--obj.count"), "obj.count");
        assert_eq!(simp("!!(obj.count > 1)"), "obj.count > 1");
        // !! of a non-boolean is NOT the identity (it booleanizes)
        assert_eq!(simp("!!obj.count"), "!!obj.count");
    }

    #[test]
    fn semantics_preserved_on_features() {
        let srcs = [
            "obj.count * 20 - obj.age / 300 + 0 * obj.size",
            "if(1 && 1, obj.count, 1 / 0)",
            "clamp(obj.size, 1 + 1, 100 - 10)",
        ];
        let env = MapEnv::new()
            .with(Feature::ObjCount, 7)
            .with(Feature::ObjAge, 900)
            .with(Feature::ObjSize, 64);
        for src in srcs {
            let e = parse(src).unwrap();
            let s = simplify(&e);
            assert_eq!(eval(&e, &env), eval(&s, &env), "{src}");
            assert!(s.size() <= e.size(), "{src}");
        }
    }
}
