//! Feature catalog: every environment value a heuristic may read.
//!
//! The paper splits the feature surface per case study: Table 1 for caching
//! (per-object, percentile aggregates, eviction history) and §5.0.1 for
//! congestion control (cwnd, RTT estimates, inflight, … plus 10-interval
//! smoothed history arrays per \[66\]). A [`Feature`] is the resolved, typed
//! form of a dotted identifier in heuristic source (`obj.count`,
//! `ages.p75`, `hist_rtt[3]`, …).
//!
//! Each feature carries:
//! * a [`Mode`] availability (cache template vs. kernel template),
//! * a conservative value **range** used by the kbpf verifier's interval
//!   analysis (e.g. `hist.contains ∈ [0,1]`, `mss ∈ [1, 65535]`).
//!
//! Context-array slots are *not* fixed here: the kbpf compiler assigns each
//! expression a minimal per-candidate layout (`policysmith_kbpf::CtxLayout`)
//! covering exactly the features it reads, for every mode uniformly —
//! mirroring how the paper's eBPF probe reads features out of a BPF map
//! written by the kernel-module scaffold, without hard-coding the map shape
//! into the language.

/// Which template a heuristic targets. Determines the legal feature set and
/// how strict the checker is (§4.1.2 vs §5.0.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Web-cache eviction `priority()` template (userspace, libCacheSim-like
    /// host). Percentile aggregates and eviction history are available.
    Cache,
    /// Kernel `cong_control()` template. Only kernel-visible scalars and the
    /// history arrays are available; programs must pass the kbpf verifier.
    Kernel,
    /// Load-balancer `score(server, req)` template (userspace dispatch
    /// tier). The expression is evaluated once per server at dispatch time;
    /// the request goes to the **lowest-scoring** server (argmin).
    Lb,
    /// Active-queue-management `act(pkt, q)` template (bottleneck dequeue
    /// hook). The expression is evaluated once per head-of-line packet;
    /// the returned value is a **verdict**: `<= 0` forward, `1` ECN-mark,
    /// `>= 2` drop. The host lives inside the event loop — one decision per
    /// packet at line rate.
    Aqm,
}

impl Mode {
    /// Every template mode, in declaration order. Tests and any code that
    /// must stay exhaustive over modes iterate this instead of hardcoding a
    /// list, so adding a mode can never silently skip it.
    pub const ALL: [Mode; 4] = [Mode::Cache, Mode::Kernel, Mode::Lb, Mode::Aqm];
}

/// Number of entries in each congestion-control history array (§5.0.1: the
/// last 10 RTT intervals, smoothed).
pub const CC_HISTORY_LEN: u8 = 10;

/// A resolved environment value.
///
/// Percentile features carry the integer percent (1..=99); history-array
/// features carry the interval index (0 = most recent completed RTT
/// interval, `CC_HISTORY_LEN - 1` = oldest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    // ---- shared ----
    /// Current virtual time. Request index units in the cache study,
    /// microseconds in the congestion-control study.
    Now,

    // ---- cache: per-object (Table 1) ----
    /// Number of accesses to the object since insertion (including the
    /// insertion itself).
    ObjCount,
    /// Virtual time of the last access to the object.
    ObjLastAccess,
    /// Virtual time at which the object was inserted.
    ObjInsertTime,
    /// Object size in bytes.
    ObjSize,
    /// Convenience: `now - obj.last_access`.
    ObjAge,
    /// Convenience: `now - obj.insert_time`.
    ObjTimeInCache,

    // ---- cache: aggregates (Table 1) ----
    /// Percentile over access counts of all resident objects.
    CountsPct(u8),
    /// Percentile over ages (`now - last_access`) of all resident objects.
    AgesPct(u8),
    /// Percentile over sizes in bytes of all resident objects.
    SizesPct(u8),

    // ---- cache: eviction history (Table 1) ----
    /// 1 if the requested object appears in the recent-eviction history.
    HistContains,
    /// Access count the object had when it was last evicted (0 if absent).
    HistCount,
    /// Age (`evict_time - last_access`) at eviction time (0 if absent).
    HistAgeAtEvict,
    /// `now - evict_time` for the most recent eviction of this object
    /// (0 if absent).
    HistTimeSinceEvict,

    // ---- cache: global ----
    /// Number of resident objects.
    CacheObjects,
    /// Bytes currently used.
    CacheUsedBytes,
    /// Capacity in bytes.
    CacheCapacity,

    // ---- congestion control: scalars (§5.0.1) ----
    /// Current congestion window, in segments.
    Cwnd,
    /// Congestion window before the previous `cong_control` invocation.
    PrevCwnd,
    /// Minimum RTT observed on the connection, µs.
    MinRttUs,
    /// Smoothed RTT, µs.
    SrttUs,
    /// Most recent RTT sample, µs.
    LastRttUs,
    /// Bytes in flight.
    InflightBytes,
    /// Segments in flight.
    InflightPkts,
    /// Maximum segment size, bytes.
    Mss,
    /// Total bytes delivered (cumulatively acked) so far.
    DeliveredBytes,
    /// Recent delivery rate estimate, bytes/sec.
    DeliveryRateBps,
    /// 1 if this invocation was triggered by a loss event, else 0.
    LossEvent,
    /// Bytes newly acked by the triggering event (0 on loss).
    AckedBytes,
    /// Slow-start threshold, segments.
    Ssthresh,

    // ---- congestion control: history arrays (§5.0.1, [66]) ----
    /// Smoothed RTT of the i-th most recent RTT interval, µs.
    HistRtt(u8),
    /// Bytes delivered during the i-th most recent RTT interval.
    HistDelivered(u8),
    /// Loss events during the i-th most recent RTT interval.
    HistLoss(u8),
    /// Mean cwnd (segments) during the i-th most recent RTT interval.
    HistCwnd(u8),
    /// Mean queuing-delay estimate (`srtt - min_rtt`) during the i-th most
    /// recent RTT interval, µs.
    HistQdelay(u8),

    // ---- load balancing: per-server, read at dispatch time ----
    /// Requests waiting in the server's FIFO queue (excludes the one in
    /// service).
    ServerQueueLen,
    /// EWMA of the server's recent request response times, µs (0 until the
    /// server has completed its first request).
    ServerEwmaLatency,
    /// Server speed in work units per millisecond (≥ 1, so it is always a
    /// checker-clean divisor — the idiom for normalizing load by capacity).
    ServerSpeed,
    /// Unfinished requests assigned to the server (queued + in service).
    ServerInflight,
    /// Residual work on the server, µs of service time: the remaining
    /// in-service time plus the service times of everything queued. The
    /// "least-work-left" signal the classical literature assumes an oracle
    /// for; our dispatch tier tracks it exactly.
    ServerWorkLeft,

    // ---- load balancing: per-request ----
    /// Service demand of the request being dispatched, in work units (≥ 1).
    ReqSize,

    // ---- AQM: per-packet, read at the dequeue hook ----
    /// Sojourn time of the head-of-line packet so far (now − enqueue), µs.
    PktSojournUs,
    /// Size of the head-of-line packet, bytes (≥ 1 — a safe divisor).
    PktSize,

    // ---- AQM: instantaneous queue state ----
    /// Bytes currently enqueued at the bottleneck.
    QueueBytes,
    /// Packets currently enqueued at the bottleneck.
    QueuePkts,
    /// Configured drop-tail byte bound of the queue (≥ 1 — a safe divisor).
    QueueCapacityBytes,
    /// EWMA-smoothed estimate of the link drain rate, bits/sec (≥ 1 — a
    /// safe divisor; initialized to the configured line rate).
    DrainRateBps,
    /// EWMA-smoothed packet sojourn time, µs.
    SojournEwmaUs,

    // ---- AQM: control history ----
    /// Time since the AQM last dropped or marked a packet, µs (equal to
    /// `now` while no drop/mark has happened yet).
    SinceLastDropUs,
    /// Packets dropped or marked by the AQM so far.
    AqmDrops,
}

impl Feature {
    /// Is this feature legal in the given template mode?
    pub fn available_in(self, mode: Mode) -> bool {
        use Feature::*;
        match self {
            Now => true,
            ObjCount | ObjLastAccess | ObjInsertTime | ObjSize | ObjAge | ObjTimeInCache
            | CountsPct(_) | AgesPct(_) | SizesPct(_) | HistContains | HistCount
            | HistAgeAtEvict | HistTimeSinceEvict | CacheObjects | CacheUsedBytes
            | CacheCapacity => mode == Mode::Cache,
            Cwnd | PrevCwnd | MinRttUs | SrttUs | LastRttUs | InflightBytes | InflightPkts
            | Mss | DeliveredBytes | DeliveryRateBps | LossEvent | AckedBytes | Ssthresh
            | HistRtt(_) | HistDelivered(_) | HistLoss(_) | HistCwnd(_) | HistQdelay(_) => {
                mode == Mode::Kernel
            }
            ServerQueueLen | ServerEwmaLatency | ServerSpeed | ServerInflight | ServerWorkLeft
            | ReqSize => mode == Mode::Lb,
            PktSojournUs | PktSize | QueueBytes | QueuePkts | QueueCapacityBytes | DrainRateBps
            | SojournEwmaUs | SinceLastDropUs | AqmDrops => mode == Mode::Aqm,
        }
    }

    /// Is the parameter (percentile percent or history index) in range?
    pub fn param_in_range(self) -> bool {
        use Feature::*;
        match self {
            CountsPct(p) | AgesPct(p) | SizesPct(p) => (1..=99).contains(&p),
            HistRtt(i) | HistDelivered(i) | HistLoss(i) | HistCwnd(i) | HistQdelay(i) => {
                i < CC_HISTORY_LEN
            }
            _ => true,
        }
    }

    /// Conservative `[min, max]` bound on the runtime value, used by the
    /// kbpf verifier's interval analysis and by the generator's guard
    /// heuristics (a divisor whose range excludes zero needs no guard).
    pub fn range(self) -> (i64, i64) {
        use Feature::*;
        const T: i64 = 1 << 50; // generous virtual-time bound
        match self {
            Now => (0, T),
            ObjCount | HistCount => (0, 1 << 40),
            ObjLastAccess | ObjInsertTime => (0, T),
            ObjSize | SizesPct(_) => (1, 1 << 40),
            ObjAge | ObjTimeInCache | AgesPct(_) | HistAgeAtEvict | HistTimeSinceEvict => (0, T),
            CountsPct(_) => (0, 1 << 40),
            HistContains | LossEvent => (0, 1),
            CacheObjects => (0, 1 << 40),
            CacheUsedBytes | CacheCapacity => (0, 1 << 50),
            Cwnd | PrevCwnd | Ssthresh | HistCwnd(_) => (1, 1 << 24),
            MinRttUs | SrttUs | LastRttUs | HistRtt(_) => (1, 1 << 32),
            HistQdelay(_) => (0, 1 << 32),
            InflightBytes | DeliveredBytes | HistDelivered(_) => (0, 1 << 50),
            InflightPkts => (0, 1 << 24),
            Mss => (1, 65535),
            DeliveryRateBps => (0, 1 << 50),
            AckedBytes => (0, 1 << 32),
            HistLoss(_) => (0, 1 << 20),
            ServerQueueLen | ServerInflight => (0, 1 << 20),
            ServerEwmaLatency => (0, 1 << 32),
            ServerWorkLeft => (0, 1 << 40),
            ServerSpeed => (1, 1 << 16),
            ReqSize => (1, 1 << 32),
            PktSojournUs | SojournEwmaUs => (0, 1 << 32),
            PktSize => (1, 1 << 16),
            QueueBytes => (0, 1 << 32),
            QueuePkts => (0, 1 << 20),
            QueueCapacityBytes => (1, 1 << 32),
            DrainRateBps => (1, 1 << 40),
            SinceLastDropUs => (0, T),
            AqmDrops => (0, 1 << 40),
        }
    }

    /// Canonical source-syntax name of the feature.
    pub fn name(self) -> String {
        use Feature::*;
        match self {
            Now => "now".into(),
            ObjCount => "obj.count".into(),
            ObjLastAccess => "obj.last_access".into(),
            ObjInsertTime => "obj.insert_time".into(),
            ObjSize => "obj.size".into(),
            ObjAge => "obj.age".into(),
            ObjTimeInCache => "obj.time_in_cache".into(),
            CountsPct(p) => format!("counts.p{p}"),
            AgesPct(p) => format!("ages.p{p}"),
            SizesPct(p) => format!("sizes.p{p}"),
            HistContains => "hist.contains".into(),
            HistCount => "hist.count".into(),
            HistAgeAtEvict => "hist.age_at_evict".into(),
            HistTimeSinceEvict => "hist.time_since_evict".into(),
            CacheObjects => "cache.objects".into(),
            CacheUsedBytes => "cache.used_bytes".into(),
            CacheCapacity => "cache.capacity".into(),
            Cwnd => "cwnd".into(),
            PrevCwnd => "prev_cwnd".into(),
            MinRttUs => "min_rtt".into(),
            SrttUs => "srtt".into(),
            LastRttUs => "last_rtt".into(),
            InflightBytes => "inflight_bytes".into(),
            InflightPkts => "inflight".into(),
            Mss => "mss".into(),
            DeliveredBytes => "delivered".into(),
            DeliveryRateBps => "delivery_rate".into(),
            LossEvent => "loss".into(),
            AckedBytes => "acked".into(),
            Ssthresh => "ssthresh".into(),
            HistRtt(i) => format!("hist_rtt[{i}]"),
            HistDelivered(i) => format!("hist_delivered[{i}]"),
            HistLoss(i) => format!("hist_loss[{i}]"),
            HistCwnd(i) => format!("hist_cwnd[{i}]"),
            HistQdelay(i) => format!("hist_qdelay[{i}]"),
            ServerQueueLen => "server.queue_len".into(),
            ServerEwmaLatency => "server.ewma_latency".into(),
            ServerSpeed => "server.speed".into(),
            ServerInflight => "server.inflight".into(),
            ServerWorkLeft => "server.work_left".into(),
            ReqSize => "req.size".into(),
            PktSojournUs => "pkt.sojourn".into(),
            PktSize => "pkt.size".into(),
            QueueBytes => "q.bytes".into(),
            QueuePkts => "q.pkts".into(),
            QueueCapacityBytes => "q.capacity".into(),
            DrainRateBps => "q.drain_rate".into(),
            SojournEwmaUs => "q.ewma_sojourn".into(),
            SinceLastDropUs => "aqm.since_drop".into(),
            AqmDrops => "aqm.drops".into(),
        }
    }

    /// Every scalar (non-parameterized) feature legal in `mode`, plus a
    /// small representative set of parameterized ones. Used by the mock
    /// generator when it "recalls" the template's documented feature list.
    pub fn catalog(mode: Mode) -> Vec<Feature> {
        use Feature::*;
        match mode {
            Mode::Cache => {
                let mut v = vec![
                    Now,
                    ObjCount,
                    ObjLastAccess,
                    ObjInsertTime,
                    ObjSize,
                    ObjAge,
                    ObjTimeInCache,
                    HistContains,
                    HistCount,
                    HistAgeAtEvict,
                    HistTimeSinceEvict,
                    CacheObjects,
                    CacheUsedBytes,
                    CacheCapacity,
                ];
                for p in [10u8, 25, 50, 75, 90] {
                    v.push(CountsPct(p));
                    v.push(AgesPct(p));
                    v.push(SizesPct(p));
                }
                v
            }
            Mode::Kernel => {
                let mut v = vec![
                    Now,
                    Cwnd,
                    PrevCwnd,
                    MinRttUs,
                    SrttUs,
                    LastRttUs,
                    InflightBytes,
                    InflightPkts,
                    Mss,
                    DeliveredBytes,
                    DeliveryRateBps,
                    LossEvent,
                    AckedBytes,
                    Ssthresh,
                ];
                for i in 0..CC_HISTORY_LEN {
                    v.push(HistRtt(i));
                    v.push(HistDelivered(i));
                    v.push(HistLoss(i));
                    v.push(HistCwnd(i));
                    v.push(HistQdelay(i));
                }
                v
            }
            Mode::Lb => {
                vec![
                    Now,
                    ServerQueueLen,
                    ServerEwmaLatency,
                    ServerSpeed,
                    ServerInflight,
                    ServerWorkLeft,
                    ReqSize,
                ]
            }
            Mode::Aqm => {
                vec![
                    Now,
                    PktSojournUs,
                    PktSize,
                    QueueBytes,
                    QueuePkts,
                    QueueCapacityBytes,
                    DrainRateBps,
                    SojournEwmaUs,
                    SinceLastDropUs,
                    AqmDrops,
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Union of every mode's catalog — the iteration base for exhaustive
    /// checks, built from [`Mode::ALL`] so a new mode is covered for free.
    fn all_catalogs() -> Vec<Feature> {
        Mode::ALL.iter().flat_map(|&m| Feature::catalog(m)).collect()
    }

    #[test]
    fn mode_all_is_exhaustive() {
        // Every catalog is non-empty and `Now` is shared across all modes;
        // each mode-specific feature is legal in exactly one mode.
        for &mode in Mode::ALL.iter() {
            assert!(!Feature::catalog(mode).is_empty(), "{mode:?} catalog empty");
            assert!(Feature::Now.available_in(mode));
        }
        for f in all_catalogs() {
            let homes = Mode::ALL.iter().filter(|&&m| f.available_in(m)).count();
            if f == Feature::Now {
                assert_eq!(homes, Mode::ALL.len());
            } else {
                assert_eq!(homes, 1, "{f:?} legal in {homes} modes, want exactly 1");
            }
        }
    }

    #[test]
    fn mode_partition_is_total() {
        for mode in Mode::ALL {
            for f in Feature::catalog(mode) {
                assert!(f.available_in(mode), "{f:?} missing from its own mode");
            }
        }
        assert!(!Feature::ObjCount.available_in(Mode::Kernel));
        assert!(!Feature::Cwnd.available_in(Mode::Cache));
        assert!(!Feature::ServerQueueLen.available_in(Mode::Cache));
        assert!(!Feature::ServerQueueLen.available_in(Mode::Kernel));
        assert!(!Feature::ObjCount.available_in(Mode::Lb));
        assert!(!Feature::Cwnd.available_in(Mode::Lb));
        assert!(!Feature::PktSojournUs.available_in(Mode::Kernel));
        assert!(!Feature::QueueBytes.available_in(Mode::Lb));
        assert!(!Feature::Cwnd.available_in(Mode::Aqm));
        assert!(!Feature::ServerQueueLen.available_in(Mode::Aqm));
    }

    #[test]
    fn ranges_are_well_formed() {
        for f in all_catalogs() {
            let (lo, hi) = f.range();
            assert!(lo <= hi, "{f:?} range inverted");
        }
    }

    #[test]
    fn lb_divisor_features_are_nonzero_where_promised() {
        // The Lb prompt advertises `server.speed` and `req.size` as safe
        // divisors; their declared ranges must exclude zero.
        assert!(Feature::ServerSpeed.range().0 > 0);
        assert!(Feature::ReqSize.range().0 > 0);
        // and the possibly-idle signals must include zero
        assert_eq!(Feature::ServerQueueLen.range().0, 0);
        assert_eq!(Feature::ServerInflight.range().0, 0);
        assert_eq!(Feature::ServerEwmaLatency.range().0, 0);
        assert_eq!(Feature::ServerWorkLeft.range().0, 0);
    }

    #[test]
    fn param_validation() {
        assert!(Feature::AgesPct(75).param_in_range());
        assert!(!Feature::AgesPct(0).param_in_range());
        assert!(!Feature::AgesPct(100).param_in_range());
        assert!(Feature::HistRtt(9).param_in_range());
        assert!(!Feature::HistRtt(10).param_in_range());
    }

    #[test]
    fn names_are_distinct() {
        // `Now` is shared between modes; every other name is unique.
        let all = all_catalogs();
        let features: std::collections::HashSet<_> = all.iter().copied().collect();
        let names: std::collections::HashSet<_> = all.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), features.len());
    }

    #[test]
    fn aqm_divisor_features_are_nonzero_where_promised() {
        // The Aqm prompt advertises these as safe divisors; their declared
        // ranges must exclude zero.
        assert!(Feature::PktSize.range().0 > 0);
        assert!(Feature::QueueCapacityBytes.range().0 > 0);
        assert!(Feature::DrainRateBps.range().0 > 0);
        // and the possibly-zero signals must include zero
        assert_eq!(Feature::PktSojournUs.range().0, 0);
        assert_eq!(Feature::QueueBytes.range().0, 0);
        assert_eq!(Feature::SinceLastDropUs.range().0, 0);
    }
}
