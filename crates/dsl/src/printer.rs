//! Pretty-printer: turns an [`Expr`] back into heuristic source.
//!
//! The printer and parser are inverse up to canonicalization: for any tree
//! the parser can produce, `parse(to_source(e)) == e`; for arbitrary trees
//! (e.g. mid-mutation generator output) the reparsed tree is semantically
//! equal (`-5` folds to a literal, etc.). Minimal parentheses are emitted
//! using the same precedence table the parser uses, so printed heuristics
//! look like the paper's Listing 1 rather than a LISP dump.

use crate::ast::{BinOp, CmpOp, Expr};

/// Render `e` as parseable heuristic source.
pub fn to_source(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(e, 0, &mut s);
    s
}

/// Precedence levels, matching the parser (higher binds tighter).
fn prec_of(e: &Expr) -> u8 {
    match e {
        Expr::If(..) => 0, // printed as if(...) call — atom — but ternary level kept for safety
        Expr::Bin(BinOp::Or, ..) => 1,
        Expr::Bin(BinOp::And, ..) => 2,
        Expr::Cmp(CmpOp::Eq | CmpOp::Ne, ..) => 3,
        Expr::Cmp(..) => 4,
        Expr::Bin(BinOp::Shl | BinOp::Shr, ..) => 5,
        Expr::Bin(BinOp::Add | BinOp::Sub, ..) => 6,
        Expr::Bin(BinOp::Mul | BinOp::Div | BinOp::Rem, ..) => 7,
        Expr::Neg(_) | Expr::Not(_) => 8,
        _ => 9, // atoms and call-syntax nodes
    }
}

fn write_expr(e: &Expr, min_prec: u8, out: &mut String) {
    let p = prec_of(e);
    let parens = p < min_prec;
    if parens {
        out.push('(');
    }
    match e {
        Expr::Int(v) => {
            if *v == i64::MIN {
                // `-9223372036854775808` does not survive unary-minus parsing.
                out.push_str("(-9223372036854775807 - 1)");
            } else {
                out.push_str(&v.to_string());
            }
        }
        Expr::Float(v) => out.push_str(&fmt_float(*v)),
        Expr::Feat(f) => out.push_str(&f.name()),
        Expr::Neg(a) => {
            out.push('-');
            write_expr(a, 8, out);
        }
        Expr::Not(a) => {
            out.push('!');
            write_expr(a, 8, out);
        }
        Expr::Abs(a) => {
            out.push_str("abs(");
            write_expr(a, 0, out);
            out.push(')');
        }
        Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
            out.push_str(op.symbol());
            out.push('(');
            write_expr(a, 0, out);
            out.push_str(", ");
            write_expr(b, 0, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            // left-associative: right child needs one level tighter
            write_expr(a, p, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            write_expr(b, p + 1, out);
        }
        Expr::Cmp(op, a, b) => {
            write_expr(a, p, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            write_expr(b, p + 1, out);
        }
        Expr::If(c, t, f) => {
            out.push_str("if(");
            write_expr(c, 0, out);
            out.push_str(", ");
            write_expr(t, 0, out);
            out.push_str(", ");
            write_expr(f, 0, out);
            out.push(')');
        }
        Expr::Clamp(x, lo, hi) => {
            out.push_str("clamp(");
            write_expr(x, 0, out);
            out.push_str(", ");
            write_expr(lo, 0, out);
            out.push_str(", ");
            write_expr(hi, 0, out);
            out.push(')');
        }
    }
    if parens {
        out.push(')');
    }
}

/// Format a float so the lexer can read it back (`digits.digits`, no
/// exponent). Fault-injected floats are simple values like `0.75`.
fn fmt_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') && !s.contains('e') && !s.contains('E') && !s.starts_with('-') {
        s
    } else if v.is_finite() && v >= 0.0 {
        format!("{v:.1}")
    } else {
        // negative/non-finite floats cannot be re-lexed as a literal; emit a
        // positive stand-in (these never occur in practice: the injector
        // uses a fixed positive set).
        "0.5".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MapEnv;
    use crate::eval::eval;
    use crate::feature::Feature;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let e = parse(src).unwrap();
        let printed = to_source(&e);
        let reparsed = parse(&printed).unwrap_or_else(|err| {
            panic!("reparse of `{printed}` failed: {err}");
        });
        assert_eq!(reparsed, e, "src={src} printed={printed}");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "obj.count * 20 - obj.age / 300 - obj.size / 500",
            "if(hist.contains, hist.count * 15, -40)",
            "min(1, max(2, 3))",
            "clamp(cwnd, 2, ssthresh)",
            "1 << 2 + 3",
            "(1 << 2) + 3",
            "!(obj.count > 3) && obj.size < sizes.p50",
            "hist_rtt[0] - hist_rtt[9]",
            "1 - -2",
            "-(1 + 2)",
            "cwnd / max(inflight, 1)",
            "obj.age % 7",
            "2 - (3 - 4)",
            "100 >> (cwnd > 10)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn listing1_roundtrip() {
        roundtrip(
            "obj.count * 20 - obj.age / 300 - obj.size / 500 \
             + if(hist.contains, hist.count * 15 + hist.age_at_evict / 150, -40) \
             + if(obj.last_access < ages.p75, -30, 0) \
             + if(obj.size > sizes.p75, -25, 10) \
             + if(obj.count > counts.p70, 50, -5) \
             + if(obj.age < 1000, 25, 0) \
             + if(obj.count < 3, -15, 0)",
        );
    }

    #[test]
    fn neg_int_semantic_roundtrip() {
        // Neg(Int(5)) prints as "-5" which reparses to Int(-5): not
        // structurally identical but semantically equal.
        let e = Expr::Neg(Box::new(Expr::Int(5)));
        let r = parse(&to_source(&e)).unwrap();
        let env = MapEnv::new();
        assert_eq!(eval(&e, &env), eval(&r, &env));
    }

    #[test]
    fn min_int_prints_parseable() {
        let e = Expr::Int(i64::MIN);
        let r = parse(&to_source(&e)).unwrap();
        assert_eq!(eval(&r, &MapEnv::new()).unwrap(), i64::MIN);
    }

    #[test]
    fn float_prints_parseable() {
        for v in [0.5, 0.75, 1.5, 2.0, 10.25] {
            let printed = to_source(&Expr::Float(v));
            assert_eq!(parse(&printed).unwrap(), Expr::Float(v), "{printed}");
        }
    }

    #[test]
    fn feature_names_roundtrip() {
        for f in crate::feature::Mode::ALL.iter().flat_map(|&m| Feature::catalog(m)) {
            let printed = to_source(&Expr::Feat(f));
            assert_eq!(parse(&printed).unwrap(), Expr::Feat(f), "{printed}");
        }
    }
}
