//! Property-based tests on the core DSL invariants:
//!
//! 1. **Round-trip:** printing then reparsing any tree preserves semantics
//!    (structurally identical for parser-canonical trees).
//! 2. **Simplify soundness:** `simplify` preserves `eval` results exactly,
//!    including the faulting behaviour of division by zero.
//! 3. **Simplify progress:** the simplified tree is never larger.
//! 4. **Checker/catalog agreement:** any tree built from a mode's catalog
//!    features (and no floats) passes that mode's feature checks.

use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{
    check_with_warnings, eval, parse, simplify, to_source, BinOp, CmpOp, Expr, Feature, Mode,
};
use proptest::prelude::*;

/// Features used in the random-tree generators (one per table of Table 1
/// plus the shared clock).
fn cache_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::ObjCount,
        Feature::ObjLastAccess,
        Feature::ObjSize,
        Feature::ObjAge,
        Feature::AgesPct(75),
        Feature::SizesPct(50),
        Feature::CountsPct(90),
        Feature::HistContains,
        Feature::HistCount,
        Feature::CacheObjects,
    ]
}

fn kernel_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::Cwnd,
        Feature::PrevCwnd,
        Feature::MinRttUs,
        Feature::SrttUs,
        Feature::InflightPkts,
        Feature::Mss,
        Feature::LossEvent,
        Feature::HistRtt(0),
        Feature::HistRtt(9),
        Feature::HistQdelay(3),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

/// Random expression over the given feature set. No floats: those are the
/// fault-injection path, exercised separately in unit tests.
fn arb_expr(features: Vec<Feature>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Int),
        proptest::sample::select(features).prop_map(Expr::Feat),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (arb_cmpop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Clamp(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

/// Random environment assigning in-range values to every feature the tests
/// use (both modes).
fn arb_env() -> impl Strategy<Value = MapEnv> {
    let mut all = cache_features();
    all.extend(kernel_features());
    let ranges: Vec<_> = all
        .iter()
        .map(|f| {
            let (lo, hi) = f.range();
            // keep magnitudes small enough to exercise arithmetic, large
            // enough to hit saturation paths occasionally
            (lo.max(-1_000_000), hi.min(1_000_000))
        })
        .collect();
    let values: Vec<_> = ranges.into_iter().map(|(lo, hi)| lo..=hi).collect();
    values.prop_map(move |vs| {
        let mut env = MapEnv::new();
        for (f, v) in all.iter().zip(vs) {
            env.set(*f, v);
        }
        env
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip_semantics(e in arb_expr(cache_features()), env in arb_env()) {
        let printed = to_source(&e);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed on `{printed}`: {err}"));
        prop_assert_eq!(eval(&e, &env), eval(&reparsed, &env), "printed=`{}`", printed);
    }

    #[test]
    fn parser_canonical_roundtrip_structural(e in arb_expr(kernel_features())) {
        // Once a tree has been through the parser it is canonical: a second
        // print/parse round-trip must be the identity.
        let canonical = parse(&to_source(&e)).unwrap();
        let again = parse(&to_source(&canonical)).unwrap();
        prop_assert_eq!(canonical, again);
    }

    #[test]
    fn simplify_preserves_eval(e in arb_expr(cache_features()), env in arb_env()) {
        let s = simplify(&e);
        prop_assert_eq!(eval(&e, &env), eval(&s, &env),
            "original=`{}` simplified=`{}`", to_source(&e), to_source(&s));
    }

    #[test]
    fn simplify_never_grows(e in arb_expr(cache_features())) {
        prop_assert!(simplify(&e).size() <= e.size());
    }

    #[test]
    fn catalog_trees_pass_mode_check(e in arb_expr(cache_features())) {
        let r = check_with_warnings(&e, Mode::Cache, usize::MAX, usize::MAX);
        prop_assert!(r.ok(), "{:?}", r.errors);
    }

    #[test]
    fn kernel_trees_pass_kernel_check(e in arb_expr(kernel_features())) {
        let r = check_with_warnings(&e, Mode::Kernel, usize::MAX, usize::MAX);
        prop_assert!(r.ok(), "{:?}", r.errors);
    }

    #[test]
    fn eval_is_deterministic(e in arb_expr(cache_features()), env in arb_env()) {
        prop_assert_eq!(eval(&e, &env), eval(&e, &env));
    }
}
