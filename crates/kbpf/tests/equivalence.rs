//! Property tests tying the whole kernel pipeline together:
//!
//! 1. **Verifier soundness.** If `verify` accepts a compiled program, then
//!    executing it on *any* context whose values respect the declared
//!    ranges never faults (no division by zero, no bounds violations, no
//!    fuel exhaustion with the default budget).
//! 2. **Compiler correctness.** On fault-free inputs the VM and the DSL
//!    interpreter agree bit-for-bit.
//! 3. **Interval soundness.** The `r0` interval the verifier reports
//!    contains every observed runtime result.

use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{eval, BinOp, CmpOp, Expr, Feature, Mode};
use policysmith_kbpf::{build_ctx, cc_verify_env, compile, execute, verify, SPILL_SLOTS};
use proptest::prelude::*;

fn kernel_features() -> Vec<Feature> {
    // A representative mix: possibly-zero features (loss, inflight,
    // hist_*), never-zero features (mss, min_rtt, cwnd), wide ranges.
    vec![
        Feature::Cwnd,
        Feature::PrevCwnd,
        Feature::MinRttUs,
        Feature::SrttUs,
        Feature::LastRttUs,
        Feature::InflightPkts,
        Feature::Mss,
        Feature::LossEvent,
        Feature::AckedBytes,
        Feature::Ssthresh,
        Feature::HistRtt(0),
        Feature::HistRtt(4),
        Feature::HistDelivered(2),
        Feature::HistLoss(1),
        Feature::HistQdelay(0),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1_000i64..1_000).prop_map(Expr::Int),
        proptest::sample::select(kernel_features()).prop_map(Expr::Feat),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (arb_cmpop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Clamp(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

/// A random environment whose values respect each feature's declared range
/// (clipped to keep arithmetic interesting but finite).
fn arb_env() -> impl Strategy<Value = MapEnv> {
    let feats = kernel_features();
    let ranges: Vec<_> = feats
        .iter()
        .map(|f| {
            let (lo, hi) = f.range();
            lo.max(0)..=hi.min(1_000_000)
        })
        .collect();
    ranges.prop_map(move |vs| {
        let mut env = MapEnv::new();
        for (f, v) in feats.iter().zip(vs) {
            env.set(*f, v);
        }
        env
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn verified_programs_never_fault_and_match_interpreter(
        e in arb_expr(),
        env in arb_env(),
    ) {
        let Ok(prog) = compile(&e) else {
            // Only floats / cache features fail to lower; arb_expr emits
            // neither.
            return Err(TestCaseError::fail("lowering failed unexpectedly"));
        };
        let venv = cc_verify_env();
        let Ok(r0_bounds) = verify(&prog, &venv) else {
            // Rejection is fine (e.g. unguarded division): the pipeline
            // simply discards the candidate. Nothing further to check.
            return Ok(());
        };

        let ctx = build_ctx(&env);
        let mut map = vec![0i64; SPILL_SLOTS];
        // 1. soundness: a verified program must not fault
        let got = execute(&prog, &ctx, &mut map)
            .map_err(|err| TestCaseError::fail(format!("verified program faulted: {err}\n{prog}")))?;
        // 2. compiler correctness: interpreter must agree (and must not
        //    fault either, since the verifier proved divisors nonzero)
        let want = eval(&e, &env)
            .map_err(|err| TestCaseError::fail(format!("interpreter faulted on verified program: {err}")))?;
        prop_assert_eq!(got, want, "program:\n{}", prog);
        // 3. interval soundness
        prop_assert!(r0_bounds.contains(got),
            "r0 = {} outside verified bounds [{}, {}]\n{}", got, r0_bounds.lo, r0_bounds.hi, prog);
    }

    #[test]
    fn checker_warnings_predict_verifier_on_divisions(e in arb_expr()) {
        // If the DSL checker reports no division warnings, the verifier
        // must not reject for division-by-zero (its interval analysis is
        // strictly stronger than the syntactic guard analysis).
        let report = policysmith_dsl::check_with_warnings(&e, Mode::Kernel, usize::MAX, usize::MAX);
        prop_assume!(report.ok());
        if report.warnings.is_empty() {
            if let Ok(prog) = compile(&e) {
                if let Err(err) = verify(&prog, &cc_verify_env()) {
                    prop_assert!(
                        !err.to_string().contains("divisor"),
                        "checker said guarded, verifier disagreed: {}\n{}", err, prog
                    );
                }
            }
        }
    }
}
