//! Property tests tying the whole compile-once pipeline together, for all
//! three template modes:
//!
//! 1. **Verifier soundness.** If the pipeline reports a candidate fully
//!    verified, executing it on *any* context whose values respect the
//!    declared feature ranges never faults (no division by zero, no bounds
//!    violations, no fuel exhaustion with the default budget).
//! 2. **Compiler correctness.** The VM and the DSL interpreter agree
//!    bit-for-bit — `dsl::eval` is the specification, the compiled program
//!    the implementation. This includes the fault cases: a division by
//!    zero at runtime surfaces as `VmError::DivByZero` exactly when the
//!    interpreter reports `EvalError::DivByZero`, so the hosts' latched
//!    fallback fires identically for both engines.
//! 3. **Interval soundness.** The `r0` interval the verifier reports
//!    contains every observed runtime result.

use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{eval, BinOp, CmpOp, Expr, Feature, Mode};
use policysmith_kbpf::{execute, CompiledPolicy, VmError, SPILL_SLOTS};
use proptest::prelude::*;

fn kernel_features() -> Vec<Feature> {
    // A representative mix: possibly-zero features (loss, inflight,
    // hist_*), never-zero features (mss, min_rtt, cwnd), wide ranges.
    vec![
        Feature::Cwnd,
        Feature::PrevCwnd,
        Feature::MinRttUs,
        Feature::SrttUs,
        Feature::LastRttUs,
        Feature::InflightPkts,
        Feature::Mss,
        Feature::LossEvent,
        Feature::AckedBytes,
        Feature::Ssthresh,
        Feature::HistRtt(0),
        Feature::HistRtt(4),
        Feature::HistDelivered(2),
        Feature::HistLoss(1),
        Feature::HistQdelay(0),
    ]
}

fn cache_features() -> Vec<Feature> {
    // Table-1 surface, including parameterized percentiles outside the
    // catalog's representative set (p60) — the generic layout must slot
    // them all.
    vec![
        Feature::Now,
        Feature::ObjCount,
        Feature::ObjLastAccess,
        Feature::ObjSize,
        Feature::ObjAge,
        Feature::ObjTimeInCache,
        Feature::CountsPct(50),
        Feature::AgesPct(60),
        Feature::SizesPct(90),
        Feature::HistContains,
        Feature::HistCount,
        Feature::HistTimeSinceEvict,
        Feature::CacheObjects,
        Feature::CacheUsedBytes,
        Feature::CacheCapacity,
    ]
}

fn lb_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::ServerQueueLen,
        Feature::ServerEwmaLatency,
        Feature::ServerSpeed,
        Feature::ServerInflight,
        Feature::ServerWorkLeft,
        Feature::ReqSize,
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_expr(features: Vec<Feature>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1_000i64..1_000).prop_map(Expr::Int),
        proptest::sample::select(features).prop_map(Expr::Feat),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (arb_cmpop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::ite(a, b, c)),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Clamp(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

/// A random environment whose values respect each feature's declared range
/// (clipped to keep arithmetic interesting but finite).
fn arb_env(features: Vec<Feature>) -> impl Strategy<Value = MapEnv> {
    let ranges: Vec<_> = features
        .iter()
        .map(|f| {
            let (lo, hi) = f.range();
            lo.max(0)..=hi.min(1_000_000)
        })
        .collect();
    ranges.prop_map(move |vs| {
        let mut env = MapEnv::new();
        for (f, v) in features.iter().zip(vs) {
            env.set(*f, v);
        }
        env
    })
}

/// The shared oracle check: compile in `mode`, execute against `env`, and
/// demand bit-for-bit agreement with `dsl::eval` — result *and* fault.
fn assert_compiled_matches_interpreter(e: &Expr, env: &MapEnv, mode: Mode) -> TestCaseResult {
    let policy = match CompiledPolicy::compile(e, mode) {
        Ok(p) => p,
        // Userspace compiles reject only on budgets (possible for deeply
        // nested random trees); kernel ones additionally on verification.
        // Either way the pipeline discards the candidate; nothing to check.
        Err(_) => return Ok(()),
    };
    // In kernel mode a successful compile IS full verification.
    prop_assert!(mode != Mode::Kernel || !policy.may_fault(), "kernel mode must not defer faults");
    let mut ctx = Vec::new();
    let mut map = vec![0i64; SPILL_SLOTS];
    let got = policy.run_with_env(env, &mut ctx, &mut map);
    let want = eval(e, env);
    // `run` uses the verified fast path; the defensive interpreter is a
    // second implementation of the same ISA and must never diverge from it
    // (this is the guard that keeps the two VM loops in sync).
    let mut map2 = vec![0i64; SPILL_SLOTS];
    let defensive = execute(policy.program(), &ctx, &mut map2);
    prop_assert_eq!(&got, &defensive, "fast-path and defensive VM disagree:\n{}", policy.program());
    prop_assert_eq!(&map, &map2, "scratch maps diverged:\n{}", policy.program());
    match (got, want) {
        (Ok(g), Ok(w)) => {
            prop_assert_eq!(g, w, "program:\n{}", policy.program());
            if let Some(r0) = policy.r0_bounds() {
                prop_assert!(
                    r0.lo <= g && g <= r0.hi,
                    "r0 = {} outside verified bounds [{}, {}]\n{}",
                    g,
                    r0.lo,
                    r0.hi,
                    policy.program()
                );
            }
        }
        (Err(VmError::DivByZero { .. }), Err(policysmith_dsl::EvalError::DivByZero)) => {
            // identical fault: both engines trip the same host fallback —
            // which the static pipeline must have predicted as possible
            prop_assert!(
                policy.may_fault(),
                "a fully verified program faulted: {}",
                policy.program()
            );
        }
        (got, want) => {
            return Err(TestCaseError::fail(format!(
                "engines disagree: vm={got:?} interp={want:?}\n{}",
                policy.program()
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernel_verified_programs_never_fault_and_match_interpreter(
        e in arb_expr(kernel_features()),
        env in arb_env(kernel_features()),
    ) {
        // (the helper additionally asserts kernel mode never defers faults,
        // so its fault arm is unreachable here)
        assert_compiled_matches_interpreter(&e, &env, Mode::Kernel)?;
    }

    #[test]
    fn cache_compiled_execution_matches_interpreter_including_faults(
        e in arb_expr(cache_features()),
        env in arb_env(cache_features()),
    ) {
        assert_compiled_matches_interpreter(&e, &env, Mode::Cache)?;
    }

    #[test]
    fn lb_compiled_execution_matches_interpreter_including_faults(
        e in arb_expr(lb_features()),
        env in arb_env(lb_features()),
    ) {
        assert_compiled_matches_interpreter(&e, &env, Mode::Lb)?;
    }

    #[test]
    fn checker_warnings_predict_verifier_on_divisions(e in arb_expr(kernel_features())) {
        // If the DSL checker reports no division warnings, the verifier
        // must not reject for division-by-zero (its interval analysis is
        // strictly stronger than the syntactic guard analysis).
        let report = policysmith_dsl::check_with_warnings(&e, Mode::Kernel, usize::MAX, usize::MAX);
        prop_assume!(report.ok());
        if report.warnings.is_empty() {
            if let Err(err) = CompiledPolicy::compile(&e, Mode::Kernel) {
                prop_assert!(
                    !err.to_string().contains("divisor"),
                    "checker said guarded, verifier disagreed: {}", err
                );
            }
        }
    }
}
