//! Differential property tests for the batched evaluation engine, across
//! all four template modes.
//!
//! The trust chain: `dsl::eval` specifies the scalar VM (pinned in
//! `equivalence.rs`), and the scalar VM specifies the batched engine —
//! pinned here. For random verified expressions and random
//! structure-of-arrays contexts:
//!
//! 1. **Row-for-row equality.** `run_batch` over N rows must be
//!    result-for-result identical to one scalar `run` per row in ascending
//!    row order sharing the map — fault rows included (same
//!    `VmError::DivByZero` at the same `pc`), and the shared scratch maps
//!    must end bit-identical.
//! 2. **Fused argmin/argmax.** `run_batch_argmin` must match a naive
//!    scalar scan, including the two pinned edge contracts: **ties break
//!    to the lowest row index** (strict `<`/`>` against the running best),
//!    and a faulting row aborts the reduction with the **lowest** faulting
//!    row — exactly the first fault a scalar scan would hit.

use policysmith_dsl::env::MapEnv;
use policysmith_dsl::{Expr, Feature, Mode};
use policysmith_kbpf::{BatchCtx, BatchScratch, CompiledPolicy, VmError, SPILL_SLOTS};
use proptest::prelude::*;

fn kernel_features() -> Vec<Feature> {
    vec![
        Feature::Cwnd,
        Feature::MinRttUs,
        Feature::SrttUs,
        Feature::InflightPkts,
        Feature::Mss,
        Feature::LossEvent,
        Feature::AckedBytes,
        Feature::HistRtt(0),
        Feature::HistLoss(1),
    ]
}

fn cache_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::ObjCount,
        Feature::ObjLastAccess,
        Feature::ObjSize,
        Feature::ObjAge,
        Feature::CountsPct(50),
        Feature::SizesPct(90),
        Feature::HistContains,
        Feature::CacheUsedBytes,
        Feature::CacheCapacity,
    ]
}

fn lb_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::ServerQueueLen,
        Feature::ServerEwmaLatency,
        Feature::ServerSpeed,
        Feature::ServerInflight,
        Feature::ServerWorkLeft,
        Feature::ReqSize,
    ]
}

fn aqm_features() -> Vec<Feature> {
    vec![
        Feature::Now,
        Feature::PktSojournUs,
        Feature::PktSize,
        Feature::QueueBytes,
        Feature::QueuePkts,
        Feature::QueueCapacityBytes,
        Feature::DrainRateBps,
        Feature::SojournEwmaUs,
        Feature::SinceLastDropUs,
        Feature::AqmDrops,
    ]
}

fn arb_binop() -> impl Strategy<Value = policysmith_dsl::BinOp> {
    use policysmith_dsl::BinOp;
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_expr(features: Vec<Feature>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1_000i64..1_000).prop_map(Expr::Int),
        proptest::sample::select(features).prop_map(Expr::Feat),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::ite(a, b, c)),
        ]
    })
}

/// A random environment respecting each feature's declared range, clipped.
/// Possibly-zero features (inflight, queue lengths, loss counters, …) DO
/// sample zero, so random divisions produce genuine fault rows.
fn arb_env(features: Vec<Feature>) -> impl Strategy<Value = MapEnv> {
    let ranges: Vec<_> = features
        .iter()
        .map(|f| {
            let (lo, hi) = f.range();
            lo.max(0)..=hi.min(1_000_000)
        })
        .collect();
    ranges.prop_map(move |vs| {
        let mut env = MapEnv::new();
        for (f, v) in features.iter().zip(vs) {
            env.set(*f, v);
        }
        env
    })
}

/// 1–8 row environments per case.
fn arb_rows(features: Vec<Feature>) -> impl Strategy<Value = Vec<MapEnv>> {
    proptest::collection::vec(arb_env(features), 1..8)
}

/// The naive reference reduction the fused one is pinned against: scalar
/// `run` per row in ascending order, strict comparison against the running
/// best (→ lowest index on ties), abort at the first faulting row.
fn naive_reduce(
    policy: &CompiledPolicy,
    ctxs: &[Vec<i64>],
    better: impl Fn(i64, i64) -> bool,
) -> Result<usize, (usize, VmError)> {
    let mut map = vec![0i64; SPILL_SLOTS];
    let mut best = 0usize;
    let mut best_score = policy.run(&ctxs[0], &mut map).map_err(|e| (0, e))?;
    for (r, ctx) in ctxs.iter().enumerate().skip(1) {
        let v = policy.run(ctx, &mut map).map_err(|e| (r, e))?;
        if better(best_score, v) {
            best_score = v;
            best = r;
        }
    }
    Ok(best)
}

/// The shared differential check for one `(expr, rows, mode)` case.
fn assert_batch_matches_scalar(e: &Expr, envs: &[MapEnv], mode: Mode) -> TestCaseResult {
    let policy = match CompiledPolicy::compile(e, mode) {
        Ok(p) => p,
        // budget/verification rejections discard the candidate upstream
        Err(_) => return Ok(()),
    };
    let layout = policy.layout();
    let mut ctxs: Vec<Vec<i64>> = Vec::with_capacity(envs.len());
    for env in envs {
        let mut ctx = Vec::new();
        layout.fill(env, &mut ctx);
        ctxs.push(ctx);
    }
    let refs: Vec<&[i64]> = ctxs.iter().map(|c| c.as_slice()).collect();
    let batch = BatchCtx::from_rows(layout.len(), &refs);
    let mut scratch = BatchScratch::new();

    // 1. run_batch ≡ scalar run per row (shared map, ascending order)
    let mut bmap = vec![0i64; SPILL_SLOTS];
    let mut out = Vec::new();
    policy.run_batch(&batch, &mut scratch, &mut bmap, &mut out);
    prop_assert_eq!(out.len(), envs.len(), "one result per row");
    let mut smap = vec![0i64; SPILL_SLOTS];
    for (r, ctx) in ctxs.iter().enumerate() {
        let want = policy.run(ctx, &mut smap);
        prop_assert_eq!(
            &out[r],
            &want,
            "row {} diverged (plan {:?}):\n{}",
            r,
            policy.batch_plan(),
            policy.program()
        );
    }
    prop_assert_eq!(&bmap, &smap, "shared scratch maps diverged:\n{}", policy.program());

    // 2. fused argmin/argmax ≡ the naive scalar scan (fresh maps per side)
    let mut map = vec![0i64; SPILL_SLOTS];
    let fused_min =
        policy.run_batch_argmin(&batch, &mut scratch, &mut map).map_err(|f| (f.row, f.fault));
    prop_assert_eq!(
        &fused_min,
        &naive_reduce(&policy, &ctxs, |best, v| v < best),
        "argmin diverged from the naive scan:\n{}",
        policy.program()
    );
    let mut map = vec![0i64; SPILL_SLOTS];
    let fused_max =
        policy.run_batch_argmax(&batch, &mut scratch, &mut map).map_err(|f| (f.row, f.fault));
    prop_assert_eq!(
        &fused_max,
        &naive_reduce(&policy, &ctxs, |best, v| v > best),
        "argmax diverged from the naive scan:\n{}",
        policy.program()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn kernel_batch_matches_scalar_per_row(
        e in arb_expr(kernel_features()),
        envs in arb_rows(kernel_features()),
    ) {
        assert_batch_matches_scalar(&e, &envs, Mode::Kernel)?;
    }

    #[test]
    fn cache_batch_matches_scalar_per_row(
        e in arb_expr(cache_features()),
        envs in arb_rows(cache_features()),
    ) {
        assert_batch_matches_scalar(&e, &envs, Mode::Cache)?;
    }

    #[test]
    fn lb_batch_matches_scalar_per_row(
        e in arb_expr(lb_features()),
        envs in arb_rows(lb_features()),
    ) {
        assert_batch_matches_scalar(&e, &envs, Mode::Lb)?;
    }

    #[test]
    fn aqm_batch_matches_scalar_per_row(
        e in arb_expr(aqm_features()),
        envs in arb_rows(aqm_features()),
    ) {
        assert_batch_matches_scalar(&e, &envs, Mode::Aqm)?;
    }
}

/// Deterministic pin of the tie-break contract on a real compiled policy
/// (beyond the random-case coverage above): equal minima pick the lowest
/// row index.
#[test]
fn argmin_tie_break_is_lowest_row_index() {
    let e = policysmith_dsl::parse("server.queue_len * 10").unwrap();
    let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
    // rows 1, 2 and 4 tie at the minimum score 10
    let mut batch = BatchCtx::with_rows(policy.layout().len(), 5);
    for (row, q) in [7i64, 1, 1, 3, 1].into_iter().enumerate() {
        batch.set(row, 0, q);
    }
    let mut scratch = BatchScratch::new();
    let mut map = vec![0i64; SPILL_SLOTS];
    assert_eq!(policy.run_batch_argmin(&batch, &mut scratch, &mut map), Ok(1));
    assert_eq!(policy.run_batch_argmax(&batch, &mut scratch, &mut map), Ok(0));
}

/// Deterministic pin of the fault-order contract: the fused reduction
/// reports the lowest faulting row even when the fault is not the first
/// row overall.
#[test]
fn argmin_fault_abort_reports_the_lowest_faulting_row() {
    let e = policysmith_dsl::parse("1000 / server.queue_len").unwrap();
    let policy = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
    assert!(policy.may_fault(), "unprovable division must defer to the runtime guard");
    let mut batch = BatchCtx::with_rows(policy.layout().len(), 4);
    for (row, q) in [5i64, 0, 2, 0].into_iter().enumerate() {
        batch.set(row, 0, q);
    }
    let mut scratch = BatchScratch::new();
    let mut map = vec![0i64; SPILL_SLOTS];
    let err = policy.run_batch_argmin(&batch, &mut scratch, &mut map).unwrap_err();
    assert_eq!(err.row, 1, "row 1 is the lowest faulting row");
    assert!(matches!(err.fault, VmError::DivByZero { .. }));
}
