//! The kbpf static verifier — the `Checker` of the congestion-control case
//! study (§5.0.2: "all candidate programs pass the eBPF verifier before
//! execution — which acts as the Checker in our framework").
//!
//! Soundness argument, in the same shape as the kernel's verifier:
//!
//! 1. **Structural pass.** Program non-empty, within [`MAX_INSNS`], register
//!    numbers valid, every jump strictly forward and in-bounds, control
//!    cannot fall off the end, context/map indices within the declared
//!    sizes. Forward-only jumps make the CFG a DAG, so termination is by
//!    construction (the paper's "no unbounded loops" constraint).
//! 2. **Abstract interpretation.** One forward dataflow pass (legal because
//!    the CFG is a DAG and instruction order is a topological order)
//!    tracking, per register, either ⊥ (uninitialized) or a signed interval
//!    `[lo, hi]`. Conditional jumps *refine* intervals on both edges (e.g.
//!    after `if r1 >= r2` the taken edge knows `r1.lo ≥ r2.lo`), which is
//!    exactly what lets `x / max(y, 1)` verify while `x / y` is rejected —
//!    the error pattern the paper reports dominating kernel candidates.
//! 3. **Obligations.** No read of ⊥; every `div`/`rem` divisor interval
//!    must exclude 0; `r0` must be initialized at every `exit`.
//!
//! Diagnostics render in the kernel verifier's terse style ("R3 min value 0
//! is not allowed as divisor") because they are fed back verbatim to the
//! generator (§5.0.3's +19% repair pass).

use crate::isa::{Insn, Op, Program, MAX_INSNS, REG_COUNT};
use policysmith_dsl::eval::{div_sat, rem_sat, shl_sat, shr_arith};
use std::fmt;

/// Declared execution environment of a program: value ranges for each
/// read-only context slot, and the scratch-map size. The context ranges are
/// how domain knowledge ("`mss` is never zero") reaches the verifier, just
/// as the kernel verifier knows the bounds of `__sk_buff` fields.
#[derive(Debug, Clone)]
pub struct VerifyEnv {
    /// `ctx[i]` is guaranteed to lie within `ctx_ranges[i]`.
    pub ctx_ranges: Vec<(i64, i64)>,
    /// Number of scratch map slots addressable by `LdMap`/`StMap`.
    pub map_slots: usize,
}

impl VerifyEnv {
    /// Environment with `n` unconstrained context slots.
    pub fn opaque(n: usize, map_slots: usize) -> Self {
        VerifyEnv { ctx_ranges: vec![(i64::MIN, i64::MAX); n], map_slots }
    }
}

/// Rejection reasons, in kernel-verifier style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    EmptyProgram,
    TooManyInsns {
        len: usize,
    },
    BadRegister {
        pc: usize,
        reg: u8,
    },
    BackEdge {
        pc: usize,
        target: i64,
    },
    JumpOutOfBounds {
        pc: usize,
        target: i64,
    },
    FallsOffEnd {
        pc: usize,
    },
    CtxOutOfBounds {
        pc: usize,
        slot: i64,
        size: usize,
    },
    MapOutOfBounds {
        pc: usize,
        slot: i64,
        size: usize,
    },
    UninitRead {
        pc: usize,
        reg: u8,
    },
    /// The divisor's interval includes zero.
    DivByZeroPossible {
        pc: usize,
        reg_desc: String,
        lo: i64,
        hi: i64,
    },
    /// `r0` may be uninitialized at an `exit`.
    R0NotSet {
        pc: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "verifier: empty program"),
            VerifyError::TooManyInsns { len } => {
                write!(f, "verifier: program too large ({len} insns, max {MAX_INSNS})")
            }
            VerifyError::BadRegister { pc, reg } => {
                write!(f, "verifier: insn {pc}: R{reg} is invalid")
            }
            VerifyError::BackEdge { pc, target } => {
                write!(f, "verifier: back-edge from insn {pc} to {target}")
            }
            VerifyError::JumpOutOfBounds { pc, target } => {
                write!(f, "verifier: insn {pc}: jump out of range, target {target}")
            }
            VerifyError::FallsOffEnd { pc } => {
                write!(f, "verifier: insn {pc}: control flow falls off program end")
            }
            VerifyError::CtxOutOfBounds { pc, slot, size } => {
                write!(f, "verifier: insn {pc}: ctx access slot {slot} outside [0, {size})")
            }
            VerifyError::MapOutOfBounds { pc, slot, size } => {
                write!(f, "verifier: insn {pc}: map access slot {slot} outside [0, {size})")
            }
            VerifyError::UninitRead { pc, reg } => {
                write!(f, "verifier: insn {pc}: R{reg} !read_ok (uninitialized)")
            }
            VerifyError::DivByZeroPossible { pc, reg_desc, lo, hi } => write!(
                f,
                "verifier: insn {pc}: {reg_desc} range [{lo}, {hi}] includes 0, \
                 not allowed as divisor"
            ),
            VerifyError::R0NotSet { pc } => {
                write!(f, "verifier: insn {pc}: R0 !read_ok at exit")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A signed interval. `Bot` (⊥) is represented as `None` at the register
/// level; `Interval` itself is always a valid `lo <= hi` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

impl Interval {
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound; `None` if disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn add(self, o: Interval) -> Interval {
        Interval { lo: self.lo.saturating_add(o.lo), hi: self.hi.saturating_add(o.hi) }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval { lo: self.lo.saturating_sub(o.hi), hi: self.hi.saturating_sub(o.lo) }
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval { lo: *c.iter().min().unwrap(), hi: *c.iter().max().unwrap() }
    }

    /// Division; caller guarantees `o` excludes 0 (so `o` is entirely
    /// positive or entirely negative, making corner evaluation sound).
    fn div(self, o: Interval) -> Interval {
        debug_assert!(!o.contains(0));
        let c = [
            div_sat(self.lo, o.lo),
            div_sat(self.lo, o.hi),
            div_sat(self.hi, o.lo),
            div_sat(self.hi, o.hi),
        ];
        Interval { lo: *c.iter().min().unwrap(), hi: *c.iter().max().unwrap() }
    }

    /// Remainder; caller guarantees `o` excludes 0. The result magnitude is
    /// strictly below `max(|o|)` and its sign follows the dividend.
    fn rem(self, o: Interval) -> Interval {
        debug_assert!(!o.contains(0));
        let m = o.lo.saturating_abs().max(o.hi.saturating_abs()).saturating_sub(1);
        // rem_sat(i64::MIN, -1) == 0, covered by [−m, m] since m ≥ 0.
        let _ = rem_sat; // semantics anchor; bounds do not need exact corners
        let lo = if self.lo >= 0 { 0 } else { -m };
        let hi = if self.hi <= 0 { 0 } else { m };
        Interval { lo, hi }
    }

    fn neg(self) -> Interval {
        Interval { lo: self.hi.saturating_neg(), hi: self.lo.saturating_neg() }
    }

    /// Left shift with the DSL/VM clamping semantics.
    fn shl(self, o: Interval) -> Interval {
        let amts = [o.lo.clamp(0, 63), o.hi.clamp(0, 63)];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in [self.lo, self.hi] {
            for a in amts {
                let r = shl_sat(v, a);
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        // value interval spanning 0 contributes 0 itself
        if self.contains(0) {
            lo = lo.min(0);
            hi = hi.max(0);
        }
        Interval { lo, hi }
    }

    /// Arithmetic right shift with clamping semantics.
    fn shr(self, o: Interval) -> Interval {
        let amts = [o.lo.clamp(0, 63), o.hi.clamp(0, 63)];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in [self.lo, self.hi] {
            for a in amts {
                let r = shr_arith(v, a);
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        if self.contains(0) {
            lo = lo.min(0);
            hi = hi.max(0);
        }
        Interval { lo, hi }
    }
}

/// Abstract machine state: one optional interval per register (⊥ = `None`).
type AbsState = [Option<Interval>; REG_COUNT as usize];

fn join_states(a: &AbsState, b: &AbsState) -> AbsState {
    let mut out: AbsState = Default::default();
    for i in 0..out.len() {
        out[i] = match (a[i], b[i]) {
            (Some(x), Some(y)) => Some(x.join(y)),
            // A register initialized on only one path is ⊥ after the join:
            // reading it later must be rejected.
            _ => None,
        };
    }
    out
}

/// Verify `prog` against `env`. On success returns the interval of `r0`
/// joined over all `exit` sites (useful diagnostics: the harness logs the
/// provable cwnd bounds of each accepted candidate).
pub fn verify(prog: &Program, env: &VerifyEnv) -> Result<Interval, VerifyError> {
    structural_check(prog, env)?;

    let n = prog.insns.len();
    // in_state[pc]: join over all edges into pc; None = not yet reached.
    let mut in_state: Vec<Option<AbsState>> = vec![None; n];
    in_state[0] = Some(Default::default());
    let mut r0_at_exit: Option<Interval> = None;

    for pc in 0..n {
        let Some(state) = in_state[pc] else {
            continue; // unreachable
        };
        let insn = prog.insns[pc];
        let mut next = state;

        // Obligation: register reads.
        let read_reg = |st: &AbsState, r: u8| -> Result<Interval, VerifyError> {
            st[r as usize].ok_or(VerifyError::UninitRead { pc, reg: r })
        };

        use Op::*;
        match insn.op {
            Exit => {
                let r0 = read_reg(&next, 0).map_err(|_| VerifyError::R0NotSet { pc })?;
                r0_at_exit = Some(match r0_at_exit {
                    Some(acc) => acc.join(r0),
                    None => r0,
                });
                continue; // no successors
            }
            Ja => {
                let target = pc + 1 + insn.off as usize;
                propagate(&mut in_state, target, &next);
                continue;
            }
            JeqImm | JneImm | JltImm | JleImm | JgtImm | JgeImm => {
                let d = read_reg(&next, insn.dst)?;
                let o = Interval::exact(insn.imm);
                branch(prog, pc, insn, d, o, &next, &mut in_state, true);
                continue;
            }
            JeqReg | JneReg | JltReg | JleReg | JgtReg | JgeReg => {
                let d = read_reg(&next, insn.dst)?;
                let o = read_reg(&next, insn.src)?;
                branch(prog, pc, insn, d, o, &next, &mut in_state, false);
                continue;
            }
            _ => {}
        }

        // Straight-line ALU / memory ops.
        let result: Option<Interval> = match insn.op {
            MovImm => Some(Interval::exact(insn.imm)),
            MovReg => Some(read_reg(&next, insn.src)?),
            AddImm => Some(read_reg(&next, insn.dst)?.add(Interval::exact(insn.imm))),
            AddReg => Some(read_reg(&next, insn.dst)?.add(read_reg(&next, insn.src)?)),
            SubImm => Some(read_reg(&next, insn.dst)?.sub(Interval::exact(insn.imm))),
            SubReg => Some(read_reg(&next, insn.dst)?.sub(read_reg(&next, insn.src)?)),
            MulImm => Some(read_reg(&next, insn.dst)?.mul(Interval::exact(insn.imm))),
            MulReg => Some(read_reg(&next, insn.dst)?.mul(read_reg(&next, insn.src)?)),
            DivImm | RemImm => {
                let d = read_reg(&next, insn.dst)?;
                let o = Interval::exact(insn.imm);
                if o.contains(0) {
                    return Err(VerifyError::DivByZeroPossible {
                        pc,
                        reg_desc: format!("imm {}", insn.imm),
                        lo: o.lo,
                        hi: o.hi,
                    });
                }
                Some(if insn.op == DivImm { d.div(o) } else { d.rem(o) })
            }
            DivReg | RemReg => {
                let d = read_reg(&next, insn.dst)?;
                let o = read_reg(&next, insn.src)?;
                if o.contains(0) {
                    return Err(VerifyError::DivByZeroPossible {
                        pc,
                        reg_desc: format!("R{}", insn.src),
                        lo: o.lo,
                        hi: o.hi,
                    });
                }
                Some(if insn.op == DivReg { d.div(o) } else { d.rem(o) })
            }
            Neg => Some(read_reg(&next, insn.dst)?.neg()),
            LshImm => Some(read_reg(&next, insn.dst)?.shl(Interval::exact(insn.imm))),
            LshReg => Some(read_reg(&next, insn.dst)?.shl(read_reg(&next, insn.src)?)),
            RshImm => Some(read_reg(&next, insn.dst)?.shr(Interval::exact(insn.imm))),
            RshReg => Some(read_reg(&next, insn.dst)?.shr(read_reg(&next, insn.src)?)),
            LdCtx => {
                let (lo, hi) = env.ctx_ranges[insn.imm as usize];
                Some(Interval::new(lo.min(hi), hi.max(lo)))
            }
            LdMap => Some(Interval::TOP),
            StMap => {
                read_reg(&next, insn.src)?;
                None
            }
            _ => unreachable!("jumps handled above"),
        };

        if let Some(v) = result {
            next[insn.dst as usize] = Some(v);
        }
        propagate(&mut in_state, pc + 1, &next);
    }

    r0_at_exit.ok_or(VerifyError::R0NotSet { pc: n - 1 })
}

/// Merge `state` into the in-state of `target`.
fn propagate(in_state: &mut [Option<AbsState>], target: usize, state: &AbsState) {
    match &mut in_state[target] {
        Some(existing) => *existing = join_states(existing, state),
        slot @ None => *slot = Some(*state),
    }
}

/// Handle a conditional jump: refine intervals on the taken and fallthrough
/// edges, prune statically-dead edges.
#[allow(clippy::too_many_arguments)]
fn branch(
    prog: &Program,
    pc: usize,
    insn: Insn,
    d: Interval,
    o: Interval,
    state: &AbsState,
    in_state: &mut [Option<AbsState>],
    imm_form: bool,
) {
    use Op::*;
    let taken_target = pc + 1 + insn.off as usize;
    let _ = prog;

    // (refined dst, refined operand) on the taken edge and fallthrough edge.
    let (taken, fall) = match insn.op {
        JeqImm | JeqReg => (refine_eq(d, o), refine_ne(d, o)),
        JneImm | JneReg => (refine_ne(d, o), refine_eq(d, o)),
        JltImm | JltReg => (refine_lt(d, o), refine_ge(d, o)),
        JleImm | JleReg => (refine_le(d, o), refine_gt(d, o)),
        JgtImm | JgtReg => (refine_gt(d, o), refine_le(d, o)),
        JgeImm | JgeReg => (refine_ge(d, o), refine_lt(d, o)),
        _ => unreachable!(),
    };

    if let Some((rd, ro)) = taken {
        let mut st = *state;
        st[insn.dst as usize] = Some(rd);
        if !imm_form {
            st[insn.src as usize] = Some(ro);
        }
        propagate(in_state, taken_target, &st);
    }
    if let Some((rd, ro)) = fall {
        let mut st = *state;
        st[insn.dst as usize] = Some(rd);
        if !imm_form {
            st[insn.src as usize] = Some(ro);
        }
        propagate(in_state, pc + 1, &st);
    }
}

type Refined = Option<(Interval, Interval)>;

/// `d == o`: both collapse to the intersection.
fn refine_eq(d: Interval, o: Interval) -> Refined {
    d.meet(o).map(|m| (m, m))
}

/// `d != o`: only excludes singleton endpoints.
fn refine_ne(d: Interval, o: Interval) -> Refined {
    if o.lo == o.hi {
        let v = o.lo;
        if d.lo == d.hi && d.lo == v {
            return None; // d is exactly v: branch impossible
        }
        let mut nd = d;
        if nd.lo == v {
            nd.lo = v.saturating_add(1);
        }
        if nd.hi == v {
            nd.hi = v.saturating_sub(1);
        }
        if nd.lo > nd.hi {
            return None;
        }
        return Some((nd, o));
    }
    Some((d, o))
}

/// `d < o`: `d ≤ o.hi − 1`, `o ≥ d.lo + 1`.
fn refine_lt(d: Interval, o: Interval) -> Refined {
    let d_hi = d.hi.min(o.hi.saturating_sub(1));
    let o_lo = o.lo.max(d.lo.saturating_add(1));
    (d.lo <= d_hi && o_lo <= o.hi).then(|| (Interval::new(d.lo, d_hi), Interval::new(o_lo, o.hi)))
}

/// `d <= o`.
fn refine_le(d: Interval, o: Interval) -> Refined {
    let d_hi = d.hi.min(o.hi);
    let o_lo = o.lo.max(d.lo);
    (d.lo <= d_hi && o_lo <= o.hi).then(|| (Interval::new(d.lo, d_hi), Interval::new(o_lo, o.hi)))
}

/// `d > o`.
fn refine_gt(d: Interval, o: Interval) -> Refined {
    let d_lo = d.lo.max(o.lo.saturating_add(1));
    let o_hi = o.hi.min(d.hi.saturating_sub(1));
    (d_lo <= d.hi && o.lo <= o_hi).then(|| (Interval::new(d_lo, d.hi), Interval::new(o.lo, o_hi)))
}

/// `d >= o`.
fn refine_ge(d: Interval, o: Interval) -> Refined {
    let d_lo = d.lo.max(o.lo);
    let o_hi = o.hi.min(d.hi);
    (d_lo <= d.hi && o.lo <= o_hi).then(|| (Interval::new(d_lo, d.hi), Interval::new(o.lo, o_hi)))
}

/// Pass 1: structure, bounds, registers, forward-only control flow.
fn structural_check(prog: &Program, env: &VerifyEnv) -> Result<(), VerifyError> {
    let n = prog.insns.len();
    if n == 0 {
        return Err(VerifyError::EmptyProgram);
    }
    if n > MAX_INSNS {
        return Err(VerifyError::TooManyInsns { len: n });
    }
    for (pc, insn) in prog.insns.iter().enumerate() {
        if insn.dst >= REG_COUNT {
            return Err(VerifyError::BadRegister { pc, reg: insn.dst });
        }
        if insn.op.reads_src() && insn.src >= REG_COUNT {
            return Err(VerifyError::BadRegister { pc, reg: insn.src });
        }
        if insn.op.is_jump() {
            let target = pc as i64 + 1 + insn.off as i64;
            if insn.off < 0 {
                return Err(VerifyError::BackEdge { pc, target });
            }
            if target as usize > n {
                return Err(VerifyError::JumpOutOfBounds { pc, target });
            }
            if target as usize == n {
                return Err(VerifyError::FallsOffEnd { pc });
            }
        }
        match insn.op {
            Op::LdCtx if (insn.imm < 0 || insn.imm as usize >= env.ctx_ranges.len()) => {
                return Err(VerifyError::CtxOutOfBounds {
                    pc,
                    slot: insn.imm,
                    size: env.ctx_ranges.len(),
                });
            }
            Op::LdMap | Op::StMap if (insn.imm < 0 || insn.imm as usize >= env.map_slots) => {
                return Err(VerifyError::MapOutOfBounds {
                    pc,
                    slot: insn.imm,
                    size: env.map_slots,
                });
            }
            _ => {}
        }
        // Fallthrough off the end: last insn must not continue to pc+1.
        let falls_through = !matches!(insn.op, Op::Exit | Op::Ja);
        if pc + 1 == n && falls_through {
            return Err(VerifyError::FallsOffEnd { pc });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Insn, Op, Program};

    fn env2() -> VerifyEnv {
        VerifyEnv { ctx_ranges: vec![(0, 100), (1, 65535)], map_slots: 4 }
    }

    fn prog(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    fn i(op: Op, dst: u8, src: u8, imm: i64) -> Insn {
        Insn::new(op, dst, src, imm)
    }

    fn j(op: Op, dst: u8, src: u8, imm: i64, off: i32) -> Insn {
        Insn { op, dst, src, imm, off }
    }

    #[test]
    fn trivial_return() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 42), i(Op::Exit, 0, 0, 0)]);
        let r0 = verify(&p, &env2()).unwrap();
        assert_eq!(r0, Interval::exact(42));
    }

    #[test]
    fn empty_and_oversized_rejected() {
        assert_eq!(verify(&prog(vec![]), &env2()), Err(VerifyError::EmptyProgram));
        let big = prog(vec![i(Op::MovImm, 0, 0, 1); MAX_INSNS + 1]);
        assert!(matches!(verify(&big, &env2()), Err(VerifyError::TooManyInsns { .. })));
    }

    #[test]
    fn uninit_read_rejected() {
        let p = prog(vec![i(Op::MovReg, 0, 3, 0), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::UninitRead { pc: 0, reg: 3 }));
    }

    #[test]
    fn r0_unset_at_exit_rejected() {
        let p = prog(vec![i(Op::MovImm, 1, 0, 5), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::R0NotSet { pc: 1 }));
    }

    #[test]
    fn back_edge_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), j(Op::Ja, 0, 0, 0, -2), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::BackEdge { pc: 1, .. })));
    }

    #[test]
    fn falls_off_end_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::FallsOffEnd { .. })));
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), j(Op::Ja, 0, 0, 0, 1), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn ctx_and_map_bounds() {
        let p = prog(vec![i(Op::LdCtx, 0, 0, 7), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::CtxOutOfBounds { .. })));
        let p = prog(vec![i(Op::MovImm, 1, 0, 0), i(Op::StMap, 0, 1, 9), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::MapOutOfBounds { .. })));
    }

    #[test]
    fn unguarded_div_by_ctx_rejected() {
        // ctx[0] ∈ [0,100]: may be zero.
        let p = prog(vec![
            i(Op::MovImm, 0, 0, 1000),
            i(Op::LdCtx, 1, 0, 0),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        match verify(&p, &env2()) {
            Err(VerifyError::DivByZeroPossible { pc: 2, lo: 0, hi: 100, .. }) => {}
            other => panic!("expected div-by-zero rejection, got {other:?}"),
        }
    }

    #[test]
    fn div_by_nonzero_ctx_accepted() {
        // ctx[1] ∈ [1,65535]: provably nonzero, like `mss`.
        let p = prog(vec![
            i(Op::MovImm, 0, 0, 1000),
            i(Op::LdCtx, 1, 0, 1),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let r0 = verify(&p, &env2()).unwrap();
        assert!(r0.contains(1000) && r0.contains(0));
    }

    #[test]
    fn max_guard_pattern_verifies() {
        // r1 = ctx[0] (may be 0); r2 = 1; if r1 >= r2 skip; r1 = r2  — i.e.
        // r1 = max(ctx[0], 1); then r0 = 1000 / r1. The refinement on the
        // taken edge is what makes this verify.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            i(Op::MovImm, 2, 0, 1),
            j(Op::JgeReg, 1, 2, 0, 1),
            i(Op::MovReg, 1, 2, 0),
            i(Op::MovImm, 0, 0, 1000),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let r0 = verify(&p, &env2()).unwrap();
        assert_eq!(r0, Interval::new(10, 1000));
    }

    #[test]
    fn imm_guard_pattern_verifies() {
        // if r1 != 0 skip; r1 = 1 — then divide.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            j(Op::JneImm, 1, 0, 0, 1),
            i(Op::MovImm, 1, 0, 1),
            i(Op::MovImm, 0, 0, 500),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        verify(&p, &env2()).unwrap();
    }

    #[test]
    fn div_imm_zero_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), i(Op::DivImm, 0, 0, 0), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::DivByZeroPossible { .. })));
    }

    #[test]
    fn join_loses_one_sided_init() {
        // r2 initialized only on one branch; read after the join → reject.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            j(Op::JeqImm, 1, 0, 0, 1), // if r1 == 0 skip the init
            i(Op::MovImm, 2, 0, 7),
            i(Op::MovReg, 0, 2, 0), // join point: r2 maybe-⊥
            i(Op::Exit, 0, 0, 0),
        ]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::UninitRead { pc: 3, reg: 2 }));
    }

    #[test]
    fn dead_branch_pruned() {
        // r1 = 5; if r1 == 5 goto skip-the-bad-div; bad div unreachable.
        let p = prog(vec![
            i(Op::MovImm, 1, 0, 5),
            j(Op::JeqImm, 1, 0, 5, 1),
            i(Op::DivImm, 1, 0, 0), // statically unreachable
            i(Op::MovImm, 0, 0, 1),
            i(Op::Exit, 0, 0, 0),
        ]);
        verify(&p, &env2()).unwrap();
    }

    #[test]
    fn r0_interval_reported() {
        // r0 = ctx[0] + 5 → [5, 105]
        let p = prog(vec![i(Op::LdCtx, 0, 0, 0), i(Op::AddImm, 0, 0, 5), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()).unwrap(), Interval::new(5, 105));
    }

    #[test]
    fn interval_ops_sound_spots() {
        let a = Interval::new(-3, 7);
        let b = Interval::new(2, 4);
        let m = a.mul(b);
        assert!(m.contains(-12) && m.contains(28) && m.contains(0));
        let d = a.div(b);
        assert!(d.contains(-1) && d.contains(3) && d.contains(0));
        let r = a.rem(b);
        assert!(r.contains(-3) && r.contains(3) && r.contains(0));
        let s = Interval::new(1, 2).shl(Interval::new(1, 3));
        assert_eq!(s, Interval::new(2, 16));
    }

    #[test]
    fn diagnostics_kernel_style() {
        let e = VerifyError::DivByZeroPossible { pc: 4, reg_desc: "R3".into(), lo: 0, hi: 9 };
        assert!(e.to_string().contains("not allowed as divisor"));
        let e = VerifyError::BackEdge { pc: 9, target: 2 };
        assert!(e.to_string().contains("back-edge"));
    }
}
