//! The kbpf static verifier — the `Checker` of the congestion-control case
//! study (§5.0.2: "all candidate programs pass the eBPF verifier before
//! execution — which acts as the Checker in our framework").
//!
//! Soundness argument, in the same shape as the kernel's verifier:
//!
//! 1. **Structural pass.** Program non-empty, within [`MAX_INSNS`], register
//!    numbers valid, every jump strictly forward and in-bounds, control
//!    cannot fall off the end, context/map indices within the declared
//!    sizes. Forward-only jumps make the CFG a DAG, so termination is by
//!    construction (the paper's "no unbounded loops" constraint).
//! 2. **Abstract interpretation.** One forward dataflow pass (legal because
//!    the CFG is a DAG and instruction order is a topological order)
//!    tracking, per register, either ⊥ (uninitialized) or a signed interval
//!    `[lo, hi]` — the domain lives in [`crate::range`], shared with the
//!    eBPF emitter and model verifier. Conditional jumps *refine* intervals
//!    on both edges (e.g. after `if r1 >= r2` the taken edge knows
//!    `r1.lo ≥ r2.lo`), which is exactly what lets `x / max(y, 1)` verify
//!    while `x / y` is rejected — the error pattern the paper reports
//!    dominating kernel candidates. Scratch-map slots are tracked too
//!    (initialized to ⊤ since the map persists across invocations, narrowed
//!    by `StMap`), so spill/reload sequences lose no precision.
//! 3. **Obligations.** No read of ⊥; every `div`/`rem` divisor interval
//!    must exclude 0; `r0` must be initialized at every `exit`.
//!
//! Diagnostics render in the kernel verifier's terse style ("R3 min value 0
//! is not allowed as divisor") because they are fed back verbatim to the
//! generator (§5.0.3's +19% repair pass).
//!
//! Two entry points: [`verify`] returns just the provable `r0` interval;
//! [`analyze`] additionally returns the per-instruction abstract states the
//! eBPF emitter consumes to prove saturating and wrapping arithmetic agree.

use crate::isa::{Insn, Op, Program, MAX_INSNS, REG_COUNT};
pub use crate::range::Interval;
use crate::range::{refine_eq, refine_ge, refine_gt, refine_le, refine_lt, refine_ne};
use std::fmt;

/// Declared execution environment of a program: value ranges for each
/// read-only context slot, and the scratch-map size. The context ranges are
/// how domain knowledge ("`mss` is never zero") reaches the verifier, just
/// as the kernel verifier knows the bounds of `__sk_buff` fields.
#[derive(Debug, Clone)]
pub struct VerifyEnv {
    /// `ctx[i]` is guaranteed to lie within `ctx_ranges[i]`.
    pub ctx_ranges: Vec<(i64, i64)>,
    /// Number of scratch map slots addressable by `LdMap`/`StMap`.
    pub map_slots: usize,
}

impl VerifyEnv {
    /// Environment with `n` unconstrained context slots.
    pub fn opaque(n: usize, map_slots: usize) -> Self {
        VerifyEnv { ctx_ranges: vec![(i64::MIN, i64::MAX); n], map_slots }
    }
}

/// Rejection reasons, in kernel-verifier style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    EmptyProgram,
    TooManyInsns {
        len: usize,
    },
    BadRegister {
        pc: usize,
        reg: u8,
    },
    BackEdge {
        pc: usize,
        target: i64,
    },
    JumpOutOfBounds {
        pc: usize,
        target: i64,
    },
    FallsOffEnd {
        pc: usize,
    },
    CtxOutOfBounds {
        pc: usize,
        slot: i64,
        size: usize,
    },
    MapOutOfBounds {
        pc: usize,
        slot: i64,
        size: usize,
    },
    UninitRead {
        pc: usize,
        reg: u8,
    },
    /// The divisor's interval includes zero.
    DivByZeroPossible {
        pc: usize,
        reg_desc: String,
        lo: i64,
        hi: i64,
    },
    /// `r0` may be uninitialized at an `exit`.
    R0NotSet {
        pc: usize,
    },
}

impl VerifyError {
    /// The instruction index the rejection is anchored to, when there is
    /// one. Program-level rejections (empty, oversized) have no pc.
    pub fn pc(&self) -> Option<usize> {
        match self {
            VerifyError::EmptyProgram | VerifyError::TooManyInsns { .. } => None,
            VerifyError::BadRegister { pc, .. }
            | VerifyError::BackEdge { pc, .. }
            | VerifyError::JumpOutOfBounds { pc, .. }
            | VerifyError::FallsOffEnd { pc }
            | VerifyError::CtxOutOfBounds { pc, .. }
            | VerifyError::MapOutOfBounds { pc, .. }
            | VerifyError::UninitRead { pc, .. }
            | VerifyError::DivByZeroPossible { pc, .. }
            | VerifyError::R0NotSet { pc } => Some(*pc),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "verifier: empty program"),
            VerifyError::TooManyInsns { len } => {
                write!(f, "verifier: program too large ({len} insns, max {MAX_INSNS})")
            }
            VerifyError::BadRegister { pc, reg } => {
                write!(f, "verifier: insn {pc}: R{reg} is invalid")
            }
            VerifyError::BackEdge { pc, target } => {
                write!(f, "verifier: back-edge from insn {pc} to {target}")
            }
            VerifyError::JumpOutOfBounds { pc, target } => {
                write!(f, "verifier: insn {pc}: jump out of range, target {target}")
            }
            VerifyError::FallsOffEnd { pc } => {
                write!(f, "verifier: insn {pc}: control flow falls off program end")
            }
            VerifyError::CtxOutOfBounds { pc, slot, size } => {
                write!(f, "verifier: insn {pc}: ctx access slot {slot} outside [0, {size})")
            }
            VerifyError::MapOutOfBounds { pc, slot, size } => {
                write!(f, "verifier: insn {pc}: map access slot {slot} outside [0, {size})")
            }
            VerifyError::UninitRead { pc, reg } => {
                write!(f, "verifier: insn {pc}: R{reg} !read_ok (uninitialized)")
            }
            VerifyError::DivByZeroPossible { pc, reg_desc, lo, hi } => write!(
                f,
                "verifier: insn {pc}: {reg_desc} range [{lo}, {hi}] includes 0, \
                 not allowed as divisor"
            ),
            VerifyError::R0NotSet { pc } => {
                write!(f, "verifier: insn {pc}: R0 !read_ok at exit")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Abstract machine state at one program point: one optional interval per
/// register (⊥ = `None`) plus one interval per scratch-map slot (maps start
/// at ⊤ — their contents persist across invocations, so nothing can be
/// assumed about a slot before the program's first store to it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    pub regs: [Option<Interval>; REG_COUNT as usize],
    pub maps: Vec<Interval>,
}

impl AbsState {
    fn entry(map_slots: usize) -> AbsState {
        AbsState { regs: Default::default(), maps: vec![Interval::TOP; map_slots] }
    }

    fn join_with(&mut self, other: &AbsState) {
        for i in 0..self.regs.len() {
            self.regs[i] = match (self.regs[i], other.regs[i]) {
                (Some(x), Some(y)) => Some(x.join(y)),
                // A register initialized on only one path is ⊥ after the
                // join: reading it later must be rejected.
                _ => None,
            };
        }
        for (a, b) in self.maps.iter_mut().zip(other.maps.iter()) {
            *a = a.join(*b);
        }
    }
}

/// Full result of the abstract interpretation: the in-state at every
/// reachable instruction (`None` = statically unreachable) and the `r0`
/// interval joined over all `exit` sites. The eBPF emitter walks
/// `in_states` to re-derive each operand's interval and prove saturation
/// cannot occur before it commits to wrapping target arithmetic.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub in_states: Vec<Option<AbsState>>,
    pub r0: Interval,
}

/// Verify `prog` against `env`. On success returns the interval of `r0`
/// joined over all `exit` sites (useful diagnostics: the harness logs the
/// provable cwnd bounds of each accepted candidate).
pub fn verify(prog: &Program, env: &VerifyEnv) -> Result<Interval, VerifyError> {
    analyze(prog, env).map(|a| a.r0)
}

/// Verify `prog` and return the per-instruction abstract states alongside
/// the `r0` interval.
pub fn analyze(prog: &Program, env: &VerifyEnv) -> Result<Analysis, VerifyError> {
    structural_check(prog, env)?;

    let n = prog.insns.len();
    // in_state[pc]: join over all edges into pc; None = not yet reached.
    let mut in_state: Vec<Option<AbsState>> = vec![None; n];
    in_state[0] = Some(AbsState::entry(env.map_slots));
    let mut r0_at_exit: Option<Interval> = None;

    for pc in 0..n {
        let Some(state) = in_state[pc].clone() else {
            continue; // unreachable
        };
        let insn = prog.insns[pc];
        let mut next = state;

        // Obligation: register reads.
        let read_reg = |st: &AbsState, r: u8| -> Result<Interval, VerifyError> {
            st.regs[r as usize].ok_or(VerifyError::UninitRead { pc, reg: r })
        };

        use Op::*;
        match insn.op {
            Exit => {
                let r0 = read_reg(&next, 0).map_err(|_| VerifyError::R0NotSet { pc })?;
                r0_at_exit = Some(match r0_at_exit {
                    Some(acc) => acc.join(r0),
                    None => r0,
                });
                continue; // no successors
            }
            Ja => {
                let target = pc + 1 + insn.off as usize;
                propagate(&mut in_state, target, &next);
                continue;
            }
            JeqImm | JneImm | JltImm | JleImm | JgtImm | JgeImm => {
                let d = read_reg(&next, insn.dst)?;
                let o = Interval::exact(insn.imm);
                branch(pc, insn, d, o, &next, &mut in_state, true);
                continue;
            }
            JeqReg | JneReg | JltReg | JleReg | JgtReg | JgeReg => {
                let d = read_reg(&next, insn.dst)?;
                let o = read_reg(&next, insn.src)?;
                branch(pc, insn, d, o, &next, &mut in_state, false);
                continue;
            }
            _ => {}
        }

        // Straight-line ALU / memory ops.
        let result: Option<Interval> = match insn.op {
            MovImm => Some(Interval::exact(insn.imm)),
            MovReg => Some(read_reg(&next, insn.src)?),
            AddImm => Some(read_reg(&next, insn.dst)?.add(Interval::exact(insn.imm))),
            AddReg => Some(read_reg(&next, insn.dst)?.add(read_reg(&next, insn.src)?)),
            SubImm => Some(read_reg(&next, insn.dst)?.sub(Interval::exact(insn.imm))),
            SubReg => Some(read_reg(&next, insn.dst)?.sub(read_reg(&next, insn.src)?)),
            MulImm => Some(read_reg(&next, insn.dst)?.mul(Interval::exact(insn.imm))),
            MulReg => Some(read_reg(&next, insn.dst)?.mul(read_reg(&next, insn.src)?)),
            DivImm | RemImm => {
                let d = read_reg(&next, insn.dst)?;
                let o = Interval::exact(insn.imm);
                if o.contains(0) {
                    return Err(VerifyError::DivByZeroPossible {
                        pc,
                        reg_desc: format!("imm {}", insn.imm),
                        lo: o.lo,
                        hi: o.hi,
                    });
                }
                Some(if insn.op == DivImm { d.div(o) } else { d.rem(o) })
            }
            DivReg | RemReg => {
                let d = read_reg(&next, insn.dst)?;
                let o = read_reg(&next, insn.src)?;
                if o.contains(0) {
                    return Err(VerifyError::DivByZeroPossible {
                        pc,
                        reg_desc: format!("R{}", insn.src),
                        lo: o.lo,
                        hi: o.hi,
                    });
                }
                Some(if insn.op == DivReg { d.div(o) } else { d.rem(o) })
            }
            Neg => Some(read_reg(&next, insn.dst)?.neg()),
            LshImm => Some(read_reg(&next, insn.dst)?.shl(Interval::exact(insn.imm))),
            LshReg => Some(read_reg(&next, insn.dst)?.shl(read_reg(&next, insn.src)?)),
            RshImm => Some(read_reg(&next, insn.dst)?.shr(Interval::exact(insn.imm))),
            RshReg => Some(read_reg(&next, insn.dst)?.shr(read_reg(&next, insn.src)?)),
            LdCtx => {
                let (lo, hi) = env.ctx_ranges[insn.imm as usize];
                Some(Interval::new(lo.min(hi), hi.max(lo)))
            }
            LdMap => Some(next.maps[insn.imm as usize]),
            StMap => {
                let v = read_reg(&next, insn.src)?;
                next.maps[insn.imm as usize] = v;
                None
            }
            _ => unreachable!("jumps handled above"),
        };

        if let Some(v) = result {
            next.regs[insn.dst as usize] = Some(v);
        }
        propagate(&mut in_state, pc + 1, &next);
    }

    let r0 = r0_at_exit.ok_or(VerifyError::R0NotSet { pc: n - 1 })?;
    Ok(Analysis { in_states: in_state, r0 })
}

/// Merge `state` into the in-state of `target`.
fn propagate(in_state: &mut [Option<AbsState>], target: usize, state: &AbsState) {
    match &mut in_state[target] {
        Some(existing) => existing.join_with(state),
        slot @ None => *slot = Some(state.clone()),
    }
}

/// Handle a conditional jump: refine intervals on the taken and fallthrough
/// edges, prune statically-dead edges.
fn branch(
    pc: usize,
    insn: Insn,
    d: Interval,
    o: Interval,
    state: &AbsState,
    in_state: &mut [Option<AbsState>],
    imm_form: bool,
) {
    use Op::*;
    let taken_target = pc + 1 + insn.off as usize;

    // (refined dst, refined operand) on the taken edge and fallthrough edge.
    let (taken, fall) = match insn.op {
        JeqImm | JeqReg => (refine_eq(d, o), refine_ne(d, o)),
        JneImm | JneReg => (refine_ne(d, o), refine_eq(d, o)),
        JltImm | JltReg => (refine_lt(d, o), refine_ge(d, o)),
        JleImm | JleReg => (refine_le(d, o), refine_gt(d, o)),
        JgtImm | JgtReg => (refine_gt(d, o), refine_le(d, o)),
        JgeImm | JgeReg => (refine_ge(d, o), refine_lt(d, o)),
        _ => unreachable!(),
    };

    if let Some((rd, ro)) = taken {
        let mut st = state.clone();
        st.regs[insn.dst as usize] = Some(rd);
        if !imm_form {
            st.regs[insn.src as usize] = Some(ro);
        }
        propagate(in_state, taken_target, &st);
    }
    if let Some((rd, ro)) = fall {
        let mut st = state.clone();
        st.regs[insn.dst as usize] = Some(rd);
        if !imm_form {
            st.regs[insn.src as usize] = Some(ro);
        }
        propagate(in_state, pc + 1, &st);
    }
}

/// Pass 1: structure, bounds, registers, forward-only control flow.
fn structural_check(prog: &Program, env: &VerifyEnv) -> Result<(), VerifyError> {
    let n = prog.insns.len();
    if n == 0 {
        return Err(VerifyError::EmptyProgram);
    }
    if n > MAX_INSNS {
        return Err(VerifyError::TooManyInsns { len: n });
    }
    for (pc, insn) in prog.insns.iter().enumerate() {
        if insn.dst >= REG_COUNT {
            return Err(VerifyError::BadRegister { pc, reg: insn.dst });
        }
        if insn.op.reads_src() && insn.src >= REG_COUNT {
            return Err(VerifyError::BadRegister { pc, reg: insn.src });
        }
        if insn.op.is_jump() {
            let target = pc as i64 + 1 + insn.off as i64;
            if insn.off < 0 {
                return Err(VerifyError::BackEdge { pc, target });
            }
            if target as usize > n {
                return Err(VerifyError::JumpOutOfBounds { pc, target });
            }
            if target as usize == n {
                return Err(VerifyError::FallsOffEnd { pc });
            }
        }
        match insn.op {
            Op::LdCtx if (insn.imm < 0 || insn.imm as usize >= env.ctx_ranges.len()) => {
                return Err(VerifyError::CtxOutOfBounds {
                    pc,
                    slot: insn.imm,
                    size: env.ctx_ranges.len(),
                });
            }
            Op::LdMap | Op::StMap if (insn.imm < 0 || insn.imm as usize >= env.map_slots) => {
                return Err(VerifyError::MapOutOfBounds {
                    pc,
                    slot: insn.imm,
                    size: env.map_slots,
                });
            }
            _ => {}
        }
        // Fallthrough off the end: last insn must not continue to pc+1.
        let falls_through = !matches!(insn.op, Op::Exit | Op::Ja);
        if pc + 1 == n && falls_through {
            return Err(VerifyError::FallsOffEnd { pc });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Insn, Op, Program};

    fn env2() -> VerifyEnv {
        VerifyEnv { ctx_ranges: vec![(0, 100), (1, 65535)], map_slots: 4 }
    }

    fn prog(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    fn i(op: Op, dst: u8, src: u8, imm: i64) -> Insn {
        Insn::new(op, dst, src, imm)
    }

    fn j(op: Op, dst: u8, src: u8, imm: i64, off: i32) -> Insn {
        Insn { op, dst, src, imm, off }
    }

    #[test]
    fn trivial_return() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 42), i(Op::Exit, 0, 0, 0)]);
        let r0 = verify(&p, &env2()).unwrap();
        assert_eq!(r0, Interval::exact(42));
    }

    #[test]
    fn empty_and_oversized_rejected() {
        assert_eq!(verify(&prog(vec![]), &env2()), Err(VerifyError::EmptyProgram));
        let big = prog(vec![i(Op::MovImm, 0, 0, 1); MAX_INSNS + 1]);
        assert!(matches!(verify(&big, &env2()), Err(VerifyError::TooManyInsns { .. })));
    }

    #[test]
    fn uninit_read_rejected() {
        let p = prog(vec![i(Op::MovReg, 0, 3, 0), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::UninitRead { pc: 0, reg: 3 }));
    }

    #[test]
    fn r0_unset_at_exit_rejected() {
        let p = prog(vec![i(Op::MovImm, 1, 0, 5), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::R0NotSet { pc: 1 }));
    }

    #[test]
    fn back_edge_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), j(Op::Ja, 0, 0, 0, -2), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::BackEdge { pc: 1, .. })));
    }

    #[test]
    fn falls_off_end_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::FallsOffEnd { .. })));
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), j(Op::Ja, 0, 0, 0, 1), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn ctx_and_map_bounds() {
        let p = prog(vec![i(Op::LdCtx, 0, 0, 7), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::CtxOutOfBounds { .. })));
        let p = prog(vec![i(Op::MovImm, 1, 0, 0), i(Op::StMap, 0, 1, 9), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::MapOutOfBounds { .. })));
    }

    #[test]
    fn unguarded_div_by_ctx_rejected() {
        // ctx[0] ∈ [0,100]: may be zero.
        let p = prog(vec![
            i(Op::MovImm, 0, 0, 1000),
            i(Op::LdCtx, 1, 0, 0),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        match verify(&p, &env2()) {
            Err(VerifyError::DivByZeroPossible { pc: 2, lo: 0, hi: 100, .. }) => {}
            other => panic!("expected div-by-zero rejection, got {other:?}"),
        }
    }

    #[test]
    fn div_by_nonzero_ctx_accepted() {
        // ctx[1] ∈ [1,65535]: provably nonzero, like `mss`.
        let p = prog(vec![
            i(Op::MovImm, 0, 0, 1000),
            i(Op::LdCtx, 1, 0, 1),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let r0 = verify(&p, &env2()).unwrap();
        assert!(r0.contains(1000) && r0.contains(0));
    }

    #[test]
    fn max_guard_pattern_verifies() {
        // r1 = ctx[0] (may be 0); r2 = 1; if r1 >= r2 skip; r1 = r2  — i.e.
        // r1 = max(ctx[0], 1); then r0 = 1000 / r1. The refinement on the
        // taken edge is what makes this verify.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            i(Op::MovImm, 2, 0, 1),
            j(Op::JgeReg, 1, 2, 0, 1),
            i(Op::MovReg, 1, 2, 0),
            i(Op::MovImm, 0, 0, 1000),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let r0 = verify(&p, &env2()).unwrap();
        assert_eq!(r0, Interval::new(10, 1000));
    }

    #[test]
    fn imm_guard_pattern_verifies() {
        // if r1 != 0 skip; r1 = 1 — then divide.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            j(Op::JneImm, 1, 0, 0, 1),
            i(Op::MovImm, 1, 0, 1),
            i(Op::MovImm, 0, 0, 500),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        verify(&p, &env2()).unwrap();
    }

    #[test]
    fn div_imm_zero_rejected() {
        let p = prog(vec![i(Op::MovImm, 0, 0, 1), i(Op::DivImm, 0, 0, 0), i(Op::Exit, 0, 0, 0)]);
        assert!(matches!(verify(&p, &env2()), Err(VerifyError::DivByZeroPossible { .. })));
    }

    #[test]
    fn join_loses_one_sided_init() {
        // r2 initialized only on one branch; read after the join → reject.
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            j(Op::JeqImm, 1, 0, 0, 1), // if r1 == 0 skip the init
            i(Op::MovImm, 2, 0, 7),
            i(Op::MovReg, 0, 2, 0), // join point: r2 maybe-⊥
            i(Op::Exit, 0, 0, 0),
        ]);
        assert_eq!(verify(&p, &env2()), Err(VerifyError::UninitRead { pc: 3, reg: 2 }));
    }

    #[test]
    fn dead_branch_pruned() {
        // r1 = 5; if r1 == 5 goto skip-the-bad-div; bad div unreachable.
        let p = prog(vec![
            i(Op::MovImm, 1, 0, 5),
            j(Op::JeqImm, 1, 0, 5, 1),
            i(Op::DivImm, 1, 0, 0), // statically unreachable
            i(Op::MovImm, 0, 0, 1),
            i(Op::Exit, 0, 0, 0),
        ]);
        verify(&p, &env2()).unwrap();
    }

    #[test]
    fn r0_interval_reported() {
        // r0 = ctx[0] + 5 → [5, 105]
        let p = prog(vec![i(Op::LdCtx, 0, 0, 0), i(Op::AddImm, 0, 0, 5), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()).unwrap(), Interval::new(5, 105));
    }

    #[test]
    fn map_roundtrip_keeps_precision() {
        // Store an exact value, reload it: the reloaded interval must be
        // exact, not ⊤ — the precision that makes spill-heavy lowered
        // programs provably non-saturating for the eBPF emitter.
        let p = prog(vec![
            i(Op::MovImm, 1, 0, 7),
            i(Op::StMap, 0, 1, 2),
            i(Op::LdMap, 0, 0, 2),
            i(Op::Exit, 0, 0, 0),
        ]);
        assert_eq!(verify(&p, &env2()).unwrap(), Interval::exact(7));
    }

    #[test]
    fn map_load_before_store_is_top() {
        // The scratch map persists across invocations: a load the program
        // never stored to could be anything.
        let p = prog(vec![i(Op::LdMap, 0, 0, 0), i(Op::Exit, 0, 0, 0)]);
        assert_eq!(verify(&p, &env2()).unwrap(), Interval::TOP);
    }

    #[test]
    fn map_slots_join_across_branches() {
        // slot 0 = 1 on one path, 9 on the other → reload sees [1, 9].
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            i(Op::MovImm, 2, 0, 1),
            j(Op::JeqImm, 1, 0, 0, 1), // if ctx==0 keep r2=1
            i(Op::MovImm, 2, 0, 9),
            i(Op::StMap, 0, 2, 0),
            i(Op::LdMap, 0, 0, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        assert_eq!(verify(&p, &env2()).unwrap(), Interval::new(1, 9));
    }

    #[test]
    fn analyze_exposes_in_states() {
        let p = prog(vec![
            i(Op::LdCtx, 1, 0, 0),
            i(Op::AddImm, 1, 0, 5),
            i(Op::MovReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let a = analyze(&p, &env2()).unwrap();
        assert_eq!(a.in_states.len(), 4);
        // before insn 1, r1 holds ctx[0] ∈ [0,100]
        let st = a.in_states[1].as_ref().unwrap();
        assert_eq!(st.regs[1], Some(Interval::new(0, 100)));
        // before insn 2, r1 ∈ [5,105]
        let st = a.in_states[2].as_ref().unwrap();
        assert_eq!(st.regs[1], Some(Interval::new(5, 105)));
        assert_eq!(a.r0, Interval::new(5, 105));
    }

    #[test]
    fn analyze_marks_unreachable_states() {
        let p = prog(vec![
            i(Op::MovImm, 0, 0, 1),
            j(Op::Ja, 0, 0, 0, 1),
            i(Op::MovImm, 0, 0, 2), // skipped
            i(Op::Exit, 0, 0, 0),
        ]);
        let a = analyze(&p, &env2()).unwrap();
        assert!(a.in_states[2].is_none());
        assert_eq!(a.r0, Interval::exact(1));
    }

    #[test]
    fn interval_ops_sound_spots() {
        let a = Interval::new(-3, 7);
        let b = Interval::new(2, 4);
        let m = a.mul(b);
        assert!(m.contains(-12) && m.contains(28) && m.contains(0));
        let d = a.div(b);
        assert!(d.contains(-1) && d.contains(3) && d.contains(0));
        let r = a.rem(b);
        assert!(r.contains(-3) && r.contains(3) && r.contains(0));
        let s = Interval::new(1, 2).shl(Interval::new(1, 3));
        assert_eq!(s, Interval::new(2, 16));
    }

    #[test]
    fn diagnostics_kernel_style() {
        let e = VerifyError::DivByZeroPossible { pc: 4, reg_desc: "R3".into(), lo: 0, hi: 9 };
        assert!(e.to_string().contains("not allowed as divisor"));
        let e = VerifyError::BackEdge { pc: 9, target: 2 };
        assert!(e.to_string().contains("back-edge"));
    }

    #[test]
    fn every_variant_displays_and_reports_pc() {
        let cases: Vec<(VerifyError, Option<usize>, &str)> = vec![
            (VerifyError::EmptyProgram, None, "empty program"),
            (VerifyError::TooManyInsns { len: 9999 }, None, "9999"),
            (VerifyError::BadRegister { pc: 1, reg: 14 }, Some(1), "R14 is invalid"),
            (VerifyError::BackEdge { pc: 3, target: 1 }, Some(3), "back-edge"),
            (VerifyError::JumpOutOfBounds { pc: 2, target: 99 }, Some(2), "out of range"),
            (VerifyError::FallsOffEnd { pc: 5 }, Some(5), "falls off"),
            (VerifyError::CtxOutOfBounds { pc: 0, slot: 8, size: 4 }, Some(0), "ctx access"),
            (VerifyError::MapOutOfBounds { pc: 0, slot: 8, size: 4 }, Some(0), "map access"),
            (VerifyError::UninitRead { pc: 7, reg: 3 }, Some(7), "!read_ok"),
            (
                VerifyError::DivByZeroPossible { pc: 4, reg_desc: "R2".into(), lo: -1, hi: 1 },
                Some(4),
                "not allowed as divisor",
            ),
            (VerifyError::R0NotSet { pc: 6 }, Some(6), "R0 !read_ok at exit"),
        ];
        for (e, pc, needle) in cases {
            assert_eq!(e.pc(), pc, "{e}");
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            assert!(msg.starts_with("verifier:"), "{msg:?}");
            // the error-trait object renders identically
            let dyn_err: &dyn std::error::Error = &e;
            assert_eq!(dyn_err.to_string(), msg);
        }
    }
}
