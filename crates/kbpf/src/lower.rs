//! DSL → kbpf compilation.
//!
//! Lowers a checked expression to loop-free bytecode against a
//! [`CtxLayout`]: every feature read becomes a
//! `LdCtx` from the slot the layout assigned it, so one compiler serves the
//! cache, kernel, and lb templates alike. The compiler is a straightforward
//! stack machine: expression stack slot `k` lives in register `r{k+1}` for
//! `k < 8` and spills to the scratch map above that; `r9`/`r10` are reload
//! scratch, `r0` carries the result to `exit`.
//!
//! Division is lowered **unguarded** (`DivReg`), exactly as written in the
//! source — proving the divisor nonzero is the verifier's job, not the
//! compiler's. This split is what reproduces the paper's §5.0.3 pipeline:
//! the generator's unguarded `rate / inflight` compiles fine and then
//! *fails verification*, and the stderr fed back teaches it the
//! `x / max(y, 1)` idiom.

use crate::compile::CtxLayout;
use crate::isa::{Insn, Op, Program, MAX_INSNS};
use policysmith_dsl::{BinOp, CmpOp, Expr, Feature};
use std::fmt;

/// Number of expression-stack slots held directly in registers (`r1..r8`).
const STACK_REGS: usize = 8;
/// Scratch registers for reloading spilled operands.
const SCRATCH_A: u8 = 9;
const SCRATCH_B: u8 = 10;
/// Scratch-map slots reserved for spills (and the map size compiled
/// programs are verified against).
pub const SPILL_SLOTS: usize = 64;

/// Compilation failures. These are "compile errors" in the paper's pipeline
/// (as opposed to verifier rejections): float literals cannot be expressed
/// in bytecode at all, and a feature outside the layout has no slot to load
/// from (unreachable when the layout was built from the same expression).
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// Bytecode cannot contain floating point (§5: "floating-point ops
    /// disallowed").
    FloatLiteral { value: f64 },
    /// Feature has no slot in the supplied context layout.
    UnsupportedFeature { feature: Feature },
    /// Expression too deep for the spill area or emitted program too long.
    TooComplex,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::FloatLiteral { value } => write!(
                f,
                "error: SSE register return with SSE disabled: floating-point constant \
                 `{value}` cannot be lowered to kernel bytecode"
            ),
            LowerError::UnsupportedFeature { feature } => write!(
                f,
                "error: unknown symbol `{}` (feature absent from the context layout)",
                feature.name()
            ),
            LowerError::TooComplex => write!(f, "error: expression too complex to lower"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Compile `e` against `layout` to a kbpf program returning the expression
/// value in `r0`.
pub fn compile(e: &Expr, layout: &CtxLayout) -> Result<Program, LowerError> {
    let mut c = Compiler { insns: Vec::new(), layout };
    c.expr(e, 0)?;
    let r = c.load(0, SCRATCH_A);
    if r != 0 {
        c.push(Insn::new(Op::MovReg, 0, r, 0));
    }
    c.push(Insn::new(Op::Exit, 0, 0, 0));
    if c.insns.len() > MAX_INSNS {
        return Err(LowerError::TooComplex);
    }
    Ok(Program { insns: c.insns })
}

struct Compiler<'a> {
    insns: Vec<Insn>,
    layout: &'a CtxLayout,
}

impl Compiler<'_> {
    fn push(&mut self, i: Insn) {
        self.insns.push(i);
    }

    /// Emit a jump with a placeholder offset; returns its index for patching.
    fn jump(&mut self, op: Op, dst: u8, src: u8, imm: i64) -> usize {
        self.insns.push(Insn { op, dst, src, imm, off: 0 });
        self.insns.len() - 1
    }

    /// Point the jump at `jidx` to the *next* emitted instruction.
    fn patch(&mut self, jidx: usize) {
        let off = (self.insns.len() - jidx - 1) as i32;
        self.insns[jidx].off = off;
    }

    fn slot_reg(k: usize) -> Option<u8> {
        (k < STACK_REGS).then(|| (k + 1) as u8)
    }

    fn spill_slot(k: usize) -> i64 {
        (k - STACK_REGS) as i64
    }

    /// Ensure the value of stack slot `k` is in a register; returns it.
    fn load(&mut self, k: usize, scratch: u8) -> u8 {
        match Self::slot_reg(k) {
            Some(r) => r,
            None => {
                self.push(Insn::new(Op::LdMap, scratch, 0, Self::spill_slot(k)));
                scratch
            }
        }
    }

    /// Store register `r` into stack slot `k`.
    fn store(&mut self, k: usize, r: u8) {
        match Self::slot_reg(k) {
            Some(dst) => {
                if dst != r {
                    self.push(Insn::new(Op::MovReg, dst, r, 0));
                }
            }
            None => self.push(Insn::new(Op::StMap, 0, r, Self::spill_slot(k))),
        }
    }

    /// Set stack slot `k` to a constant.
    fn set_imm(&mut self, k: usize, v: i64) {
        match Self::slot_reg(k) {
            Some(r) => self.push(Insn::new(Op::MovImm, r, 0, v)),
            None => {
                self.push(Insn::new(Op::MovImm, SCRATCH_A, 0, v));
                self.push(Insn::new(Op::StMap, 0, SCRATCH_A, Self::spill_slot(k)));
            }
        }
    }

    /// Compile `e`, leaving its value in stack slot `k`.
    fn expr(&mut self, e: &Expr, k: usize) -> Result<(), LowerError> {
        if k >= STACK_REGS + SPILL_SLOTS {
            return Err(LowerError::TooComplex);
        }
        match e {
            Expr::Int(v) => self.set_imm(k, *v),
            Expr::Float(v) => return Err(LowerError::FloatLiteral { value: *v }),
            Expr::Feat(f) => {
                let slot =
                    self.layout.slot(*f).ok_or(LowerError::UnsupportedFeature { feature: *f })?;
                match Self::slot_reg(k) {
                    Some(r) => self.push(Insn::new(Op::LdCtx, r, 0, slot as i64)),
                    None => {
                        self.push(Insn::new(Op::LdCtx, SCRATCH_A, 0, slot as i64));
                        self.push(Insn::new(Op::StMap, 0, SCRATCH_A, Self::spill_slot(k)));
                    }
                }
            }
            Expr::Neg(a) => {
                self.expr(a, k)?;
                let r = self.load(k, SCRATCH_A);
                self.push(Insn::new(Op::Neg, r, 0, 0));
                self.store(k, r);
            }
            Expr::Not(a) => {
                self.expr(a, k)?;
                let r = self.load(k, SCRATCH_A);
                // r = (r == 0)
                let jt = self.jump(Op::JeqImm, r, 0, 0);
                self.push(Insn::new(Op::MovImm, r, 0, 0));
                let jend = self.jump(Op::Ja, 0, 0, 0);
                self.patch(jt);
                self.push(Insn::new(Op::MovImm, r, 0, 1));
                self.patch(jend);
                self.store(k, r);
            }
            Expr::Abs(a) => {
                self.expr(a, k)?;
                let r = self.load(k, SCRATCH_A);
                let skip = self.jump(Op::JgeImm, r, 0, 0);
                self.push(Insn::new(Op::Neg, r, 0, 0));
                self.patch(skip);
                self.store(k, r);
            }
            Expr::Bin(BinOp::And, a, b) => {
                self.expr(a, k)?;
                let ra = self.load(k, SCRATCH_A);
                let jf1 = self.jump(Op::JeqImm, ra, 0, 0);
                self.expr(b, k)?;
                let rb = self.load(k, SCRATCH_A);
                let jf2 = self.jump(Op::JeqImm, rb, 0, 0);
                self.set_imm(k, 1);
                let jend = self.jump(Op::Ja, 0, 0, 0);
                self.patch(jf1);
                self.patch(jf2);
                self.set_imm(k, 0);
                self.patch(jend);
            }
            Expr::Bin(BinOp::Or, a, b) => {
                self.expr(a, k)?;
                let ra = self.load(k, SCRATCH_A);
                let jt1 = self.jump(Op::JneImm, ra, 0, 0);
                self.expr(b, k)?;
                let rb = self.load(k, SCRATCH_A);
                let jt2 = self.jump(Op::JneImm, rb, 0, 0);
                self.set_imm(k, 0);
                let jend = self.jump(Op::Ja, 0, 0, 0);
                self.patch(jt1);
                self.patch(jt2);
                self.set_imm(k, 1);
                self.patch(jend);
            }
            Expr::Bin(BinOp::Min, a, b) => self.min_max(a, b, k, Op::JleReg)?,
            Expr::Bin(BinOp::Max, a, b) => self.min_max(a, b, k, Op::JgeReg)?,
            Expr::Bin(op, a, b) => {
                self.expr(a, k)?;
                self.expr(b, k + 1)?;
                let ra = self.load(k, SCRATCH_A);
                let rb = self.load(k + 1, SCRATCH_B);
                let alu = match op {
                    BinOp::Add => Op::AddReg,
                    BinOp::Sub => Op::SubReg,
                    BinOp::Mul => Op::MulReg,
                    BinOp::Div => Op::DivReg,
                    BinOp::Rem => Op::RemReg,
                    BinOp::Shl => Op::LshReg,
                    BinOp::Shr => Op::RshReg,
                    BinOp::And | BinOp::Or | BinOp::Min | BinOp::Max => {
                        unreachable!("handled above")
                    }
                };
                self.push(Insn::new(alu, ra, rb, 0));
                self.store(k, ra);
            }
            Expr::Cmp(op, a, b) => {
                self.expr(a, k)?;
                self.expr(b, k + 1)?;
                let ra = self.load(k, SCRATCH_A);
                let rb = self.load(k + 1, SCRATCH_B);
                let jop = match op {
                    CmpOp::Lt => Op::JltReg,
                    CmpOp::Le => Op::JleReg,
                    CmpOp::Gt => Op::JgtReg,
                    CmpOp::Ge => Op::JgeReg,
                    CmpOp::Eq => Op::JeqReg,
                    CmpOp::Ne => Op::JneReg,
                };
                let jt = self.jump(jop, ra, rb, 0);
                self.push(Insn::new(Op::MovImm, ra, 0, 0));
                let jend = self.jump(Op::Ja, 0, 0, 0);
                self.patch(jt);
                self.push(Insn::new(Op::MovImm, ra, 0, 1));
                self.patch(jend);
                self.store(k, ra);
            }
            Expr::If(c, t, f) => {
                self.expr(c, k)?;
                let rc = self.load(k, SCRATCH_A);
                let jelse = self.jump(Op::JeqImm, rc, 0, 0);
                self.expr(t, k)?;
                let jend = self.jump(Op::Ja, 0, 0, 0);
                self.patch(jelse);
                self.expr(f, k)?;
                self.patch(jend);
            }
            Expr::Clamp(x, lo, hi) => {
                // max(lo, min(x, hi)) — same fault class (division inside a
                // subexpression) regardless of evaluation order.
                let desugared = Expr::bin(
                    BinOp::Max,
                    (**lo).clone(),
                    Expr::bin(BinOp::Min, (**x).clone(), (**hi).clone()),
                );
                self.expr(&desugared, k)?;
            }
        }
        Ok(())
    }

    /// `min`/`max`: keep the left operand when `left <jop> right` holds.
    fn min_max(&mut self, a: &Expr, b: &Expr, k: usize, jop: Op) -> Result<(), LowerError> {
        self.expr(a, k)?;
        self.expr(b, k + 1)?;
        let ra = self.load(k, SCRATCH_A);
        let rb = self.load(k + 1, SCRATCH_B);
        let keep = self.jump(jop, ra, rb, 0);
        self.push(Insn::new(Op::MovReg, ra, rb, 0));
        self.patch(keep);
        self.store(k, ra);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::verify;
    use crate::vm::execute;
    use policysmith_dsl::env::MapEnv;
    use policysmith_dsl::{eval, parse, Mode};

    /// Compile against the expression's own layout, verify, execute with a
    /// ctx filled from `env`, and compare with the interpreter.
    fn check_equiv(src: &str, env: &MapEnv) {
        let e = parse(src).unwrap();
        let layout = CtxLayout::for_expr(&e, Mode::Kernel);
        let prog = compile(&e, &layout).unwrap();
        verify(&prog, &layout.verify_env())
            .unwrap_or_else(|err| panic!("verify failed for `{src}`:\n{prog}\n{err}"));
        let mut ctx = Vec::new();
        layout.fill(env, &mut ctx);
        let mut map = vec![0i64; SPILL_SLOTS];
        let vm_result = execute(&prog, &ctx, &mut map).unwrap();
        let interp = eval(&e, env).unwrap();
        assert_eq!(vm_result, interp, "src=`{src}`\n{prog}");
    }

    fn env() -> MapEnv {
        MapEnv::new()
            .with(Feature::Cwnd, 20)
            .with(Feature::PrevCwnd, 18)
            .with(Feature::MinRttUs, 40_000)
            .with(Feature::SrttUs, 55_000)
            .with(Feature::LastRttUs, 60_000)
            .with(Feature::InflightPkts, 15)
            .with(Feature::Mss, 1448)
            .with(Feature::LossEvent, 0)
            .with(Feature::Ssthresh, 64)
            .with(Feature::HistRtt(0), 52_000)
            .with(Feature::HistRtt(1), 48_000)
            .with(Feature::HistQdelay(0), 12_000)
    }

    #[test]
    fn constants_and_arith() {
        check_equiv("1 + 2 * 3 - 4", &env());
        check_equiv("100 / 7 % 5", &env());
        check_equiv("(1 << 10) >> 3", &env());
    }

    #[test]
    fn features_load_from_ctx() {
        check_equiv("cwnd + prev_cwnd", &env());
        check_equiv("srtt - min_rtt", &env());
        check_equiv("hist_rtt[0] - hist_rtt[1]", &env());
    }

    #[test]
    fn comparisons_logic_conditionals() {
        check_equiv("srtt > min_rtt", &env());
        check_equiv("loss && cwnd > 10", &env());
        check_equiv("loss || cwnd > 10", &env());
        check_equiv("!loss", &env());
        check_equiv("if(loss, cwnd >> 1, cwnd + 1)", &env());
        check_equiv("srtt > min_rtt * 2 ? cwnd - 4 : cwnd + 2", &env());
    }

    #[test]
    fn intrinsics() {
        check_equiv("min(cwnd, ssthresh)", &env());
        check_equiv("max(cwnd, 2)", &env());
        check_equiv("clamp(cwnd * 2, 2, 64)", &env());
        check_equiv("abs(cwnd - prev_cwnd)", &env());
        check_equiv("abs(prev_cwnd - cwnd)", &env());
    }

    #[test]
    fn guarded_division_verifies() {
        check_equiv("cwnd * min_rtt / max(srtt, 1)", &env());
        check_equiv("delivered / max(inflight, 1)", &env());
        check_equiv("cwnd / mss", &env()); // mss range excludes zero
    }

    #[test]
    fn unguarded_division_compiles_but_fails_verify() {
        let e = parse("cwnd / inflight").unwrap(); // inflight may be 0
        let layout = CtxLayout::for_expr(&e, Mode::Kernel);
        let prog = compile(&e, &layout).unwrap();
        let err = verify(&prog, &layout.verify_env()).unwrap_err();
        assert!(err.to_string().contains("not allowed as divisor"), "{err}");
    }

    #[test]
    fn float_fails_to_lower() {
        let e = parse("cwnd * 1.5").unwrap();
        let layout = CtxLayout::for_expr(&e, Mode::Kernel);
        assert!(matches!(compile(&e, &layout), Err(LowerError::FloatLiteral { .. })));
    }

    #[test]
    fn feature_outside_the_layout_fails_to_lower() {
        // a layout built for a *different* expression has no slot for cwnd
        let other = parse("srtt").unwrap();
        let layout = CtxLayout::for_expr(&other, Mode::Kernel);
        let e = parse("cwnd + 1").unwrap();
        assert!(matches!(compile(&e, &layout), Err(LowerError::UnsupportedFeature { .. })));
    }

    #[test]
    fn deep_expression_spills_and_still_matches() {
        // Right-leaning chain forces stack depth ≈ 12 > 8 registers.
        let mut src = String::from("cwnd");
        for _ in 0..12 {
            src = format!("(1 + {src})");
        }
        check_equiv(&src, &env());
        // Left-leaning uses constant stack depth.
        let mut src = String::from("cwnd");
        for _ in 0..20 {
            src = format!("({src} + 1)");
        }
        check_equiv(&src, &env());
    }

    #[test]
    fn deep_spill_in_both_operands() {
        // Nested mins force concurrent spilled operands.
        let mut src = String::from("min(cwnd, 30)");
        for i in 0..12 {
            src = format!("min({src}, {} + cwnd)", 25 + i);
        }
        check_equiv(&src, &env());
    }

    #[test]
    fn paper_style_cc_heuristic() {
        // AIMD with history-informed backoff, in the shape §5 describes.
        check_equiv(
            "if(loss, max(cwnd >> 1, 2), \
               if(srtt - min_rtt > 20000, cwnd, \
                  cwnd + max(acked / max(mss, 1), 1)))",
            &env(),
        );
    }

    #[test]
    fn r0_bounds_from_verifier_are_sound() {
        let e = parse("clamp(cwnd * 2, 2, 1024)").unwrap();
        let layout = CtxLayout::for_expr(&e, Mode::Kernel);
        let prog = compile(&e, &layout).unwrap();
        let r0 = verify(&prog, &layout.verify_env()).unwrap();
        assert!(r0.lo >= 2 && r0.hi <= 1024, "r0 bounds {:?}", r0);
    }
}
