//! Shared signed-interval range analysis.
//!
//! One interval domain serves three consumers:
//!
//! * the [kbpf verifier](crate::verifier) — the framework's `Checker`,
//!   proving division safety and bounding `r0` for every candidate;
//! * the eBPF **emitter** (`crates/ebpf`) — which must additionally prove
//!   that no intermediate value can *saturate*, because kbpf arithmetic
//!   saturates while real eBPF wraps: a program is only emitted when the
//!   two semantics provably coincide on every reachable input;
//! * the eBPF **model verifier** (`crates/ebpf`) — an abstract
//!   interpretation over the *emitted* bytecode that re-proves division
//!   safety and memory bounds in the target ISA, standing in for the
//!   kernel's verifier inside the container.
//!
//! The transfer functions mirror the DSL/VM saturating semantics
//! bit-for-bit ([`mod@policysmith_dsl::eval`]'s `div_sat`/`rem_sat`/`shl_sat`/
//! `shr_arith`); the refinement functions implement the branch-edge
//! narrowing that lets `x / max(y, 1)` verify while `x / y` is rejected.

use policysmith_dsl::eval::{div_sat, rem_sat, shl_sat, shr_arith};

/// A signed interval. ⊥ (unreachable / uninitialized) is represented as
/// `None` at the *register* level by consumers; an `Interval` itself is
/// always a valid `lo <= hi` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

// The transfer functions deliberately shadow the `std::ops` names: they
// are saturating *interval* transfers, not element-wise operators, and
// call sites read best as `a.add(b)` next to `a.jlt(b)` etc.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The singleton interval `[v, v]`.
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// A checked constructor; panics (debug) on an inverted pair.
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound; `None` if disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Does this interval touch either saturation rail? A saturating
    /// operation whose *result* interval stays clear of both rails cannot
    /// have saturated on any input, so wrapping arithmetic computes the
    /// same value — the emitter's provability gate.
    pub fn touches_rails(self) -> bool {
        self.lo == i64::MIN || self.hi == i64::MAX
    }

    /// Saturating addition transfer.
    pub fn add(self, o: Interval) -> Interval {
        Interval { lo: self.lo.saturating_add(o.lo), hi: self.hi.saturating_add(o.hi) }
    }

    /// Saturating subtraction transfer.
    pub fn sub(self, o: Interval) -> Interval {
        Interval { lo: self.lo.saturating_sub(o.hi), hi: self.hi.saturating_sub(o.lo) }
    }

    /// Saturating multiplication transfer (corner evaluation).
    pub fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval { lo: *c.iter().min().unwrap(), hi: *c.iter().max().unwrap() }
    }

    /// Division transfer; caller guarantees `o` excludes 0 (so `o` is
    /// entirely positive or entirely negative, making corner evaluation
    /// sound).
    pub fn div(self, o: Interval) -> Interval {
        debug_assert!(!o.contains(0));
        let c = [
            div_sat(self.lo, o.lo),
            div_sat(self.lo, o.hi),
            div_sat(self.hi, o.lo),
            div_sat(self.hi, o.hi),
        ];
        Interval { lo: *c.iter().min().unwrap(), hi: *c.iter().max().unwrap() }
    }

    /// Remainder transfer; caller guarantees `o` excludes 0. The result
    /// magnitude is strictly below `max(|o|)` and its sign follows the
    /// dividend.
    pub fn rem(self, o: Interval) -> Interval {
        debug_assert!(!o.contains(0));
        let m = o.lo.saturating_abs().max(o.hi.saturating_abs()).saturating_sub(1);
        // rem_sat(i64::MIN, -1) == 0, covered by [−m, m] since m ≥ 0.
        let _ = rem_sat; // semantics anchor; bounds do not need exact corners
        let lo = if self.lo >= 0 { 0 } else { -m };
        let hi = if self.hi <= 0 { 0 } else { m };
        Interval { lo, hi }
    }

    /// Saturating negation transfer.
    pub fn neg(self) -> Interval {
        Interval { lo: self.hi.saturating_neg(), hi: self.lo.saturating_neg() }
    }

    /// Left shift with the DSL/VM clamping semantics (amount clamped to
    /// `[0, 63]`, saturating result).
    pub fn shl(self, o: Interval) -> Interval {
        let amts = [o.lo.clamp(0, 63), o.hi.clamp(0, 63)];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in [self.lo, self.hi] {
            for a in amts {
                let r = shl_sat(v, a);
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        // value interval spanning 0 contributes 0 itself
        if self.contains(0) {
            lo = lo.min(0);
            hi = hi.max(0);
        }
        Interval { lo, hi }
    }

    /// Arithmetic right shift with clamping semantics.
    pub fn shr(self, o: Interval) -> Interval {
        let amts = [o.lo.clamp(0, 63), o.hi.clamp(0, 63)];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for v in [self.lo, self.hi] {
            for a in amts {
                let r = shr_arith(v, a);
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
        if self.contains(0) {
            lo = lo.min(0);
            hi = hi.max(0);
        }
        Interval { lo, hi }
    }
}

/// Branch refinement result: the narrowed `(dst, operand)` intervals on an
/// edge, or `None` when the edge is statically dead.
pub type Refined = Option<(Interval, Interval)>;

/// `d == o`: both collapse to the intersection.
pub fn refine_eq(d: Interval, o: Interval) -> Refined {
    d.meet(o).map(|m| (m, m))
}

/// `d != o`: only excludes singleton endpoints.
pub fn refine_ne(d: Interval, o: Interval) -> Refined {
    if o.lo == o.hi {
        let v = o.lo;
        if d.lo == d.hi && d.lo == v {
            return None; // d is exactly v: branch impossible
        }
        let mut nd = d;
        if nd.lo == v {
            nd.lo = v.saturating_add(1);
        }
        if nd.hi == v {
            nd.hi = v.saturating_sub(1);
        }
        if nd.lo > nd.hi {
            return None;
        }
        return Some((nd, o));
    }
    Some((d, o))
}

/// `d < o`: `d ≤ o.hi − 1`, `o ≥ d.lo + 1`.
pub fn refine_lt(d: Interval, o: Interval) -> Refined {
    let d_hi = d.hi.min(o.hi.saturating_sub(1));
    let o_lo = o.lo.max(d.lo.saturating_add(1));
    (d.lo <= d_hi && o_lo <= o.hi).then(|| (Interval::new(d.lo, d_hi), Interval::new(o_lo, o.hi)))
}

/// `d <= o`.
pub fn refine_le(d: Interval, o: Interval) -> Refined {
    let d_hi = d.hi.min(o.hi);
    let o_lo = o.lo.max(d.lo);
    (d.lo <= d_hi && o_lo <= o.hi).then(|| (Interval::new(d.lo, d_hi), Interval::new(o_lo, o.hi)))
}

/// `d > o`.
pub fn refine_gt(d: Interval, o: Interval) -> Refined {
    let d_lo = d.lo.max(o.lo.saturating_add(1));
    let o_hi = o.hi.min(d.hi.saturating_sub(1));
    (d_lo <= d.hi && o.lo <= o_hi).then(|| (Interval::new(d_lo, d.hi), Interval::new(o.lo, o_hi)))
}

/// `d >= o`.
pub fn refine_ge(d: Interval, o: Interval) -> Refined {
    let d_lo = d.lo.max(o.lo);
    let o_hi = o.hi.min(d.hi);
    (d_lo <= d.hi && o.lo <= o_hi).then(|| (Interval::new(d_lo, d.hi), Interval::new(o.lo, o_hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: i64 = i64::MIN;
    const MAX: i64 = i64::MAX;

    // ---- lattice operations at the rails --------------------------------

    #[test]
    fn join_is_commutative_and_absorbs_top() {
        let a = Interval::new(-5, 10);
        let b = Interval::new(3, 40);
        assert_eq!(a.join(b), b.join(a));
        assert_eq!(a.join(b), Interval::new(-5, 40));
        assert_eq!(a.join(Interval::TOP), Interval::TOP);
        assert_eq!(Interval::TOP.join(a), Interval::TOP);
        assert_eq!(a.join(a), a, "join is idempotent");
    }

    #[test]
    fn join_at_extremes() {
        let lo = Interval::exact(MIN);
        let hi = Interval::exact(MAX);
        assert_eq!(lo.join(hi), Interval::TOP);
        assert_eq!(Interval::new(MIN, MIN + 5).join(Interval::new(MAX - 5, MAX)), Interval::TOP);
    }

    #[test]
    fn meet_overlap_disjoint_and_touching() {
        let a = Interval::new(0, 10);
        assert_eq!(a.meet(Interval::new(5, 20)), Some(Interval::new(5, 10)));
        // touching at one point: the singleton survives
        assert_eq!(a.meet(Interval::new(10, 20)), Some(Interval::exact(10)));
        // empty meet: disjoint intervals
        assert_eq!(a.meet(Interval::new(11, 20)), None);
        assert_eq!(Interval::exact(MIN).meet(Interval::exact(MAX)), None);
        // TOP is the meet identity
        assert_eq!(a.meet(Interval::TOP), Some(a));
    }

    // ---- arithmetic transfer functions at i64::MIN / i64::MAX -----------

    #[test]
    fn add_saturates_at_both_rails() {
        assert_eq!(Interval::exact(MAX).add(Interval::exact(1)), Interval::exact(MAX));
        assert_eq!(Interval::exact(MIN).add(Interval::exact(-1)), Interval::exact(MIN));
        let wide = Interval::new(MIN, MAX).add(Interval::new(-1, 1));
        assert_eq!(wide, Interval::TOP);
        // no saturation inside the rails
        assert_eq!(Interval::new(-3, 4).add(Interval::new(10, 20)), Interval::new(7, 24));
    }

    #[test]
    fn sub_saturates_and_orders_corners() {
        assert_eq!(Interval::exact(MIN).sub(Interval::exact(1)), Interval::exact(MIN));
        assert_eq!(Interval::exact(MAX).sub(Interval::exact(-1)), Interval::exact(MAX));
        // lo comes from self.lo − o.hi, hi from self.hi − o.lo
        assert_eq!(Interval::new(0, 10).sub(Interval::new(2, 5)), Interval::new(-5, 8));
    }

    #[test]
    fn mul_corner_evaluation_at_extremes() {
        assert_eq!(Interval::exact(MIN).mul(Interval::exact(-1)), Interval::exact(MAX));
        assert_eq!(Interval::exact(MAX).mul(Interval::exact(2)), Interval::exact(MAX));
        let m = Interval::new(-2, 3).mul(Interval::new(-7, 5));
        // corners: 14, −10, −21, 15 → [−21, 15]
        assert_eq!(m, Interval::new(-21, 15));
        // sign-spanning times the rails covers everything
        assert_eq!(Interval::new(-1, 1).mul(Interval::TOP), Interval::TOP);
    }

    #[test]
    fn div_at_min_by_minus_one_saturates() {
        // div_sat(i64::MIN, −1) = i64::MAX, the saturating convention.
        let d = Interval::exact(MIN).div(Interval::exact(-1));
        assert_eq!(d, Interval::exact(MAX));
        let d = Interval::new(MIN, MIN + 1).div(Interval::new(-2, -1));
        assert!(d.contains(MAX) && d.contains((MIN + 1) / -2));
    }

    #[test]
    fn rem_bounds_follow_dividend_sign() {
        let r = Interval::new(-100, -1).rem(Interval::new(1, 8));
        assert_eq!(r, Interval::new(-7, 0));
        let r = Interval::new(1, 100).rem(Interval::new(-8, -2));
        assert_eq!(r, Interval::new(0, 7));
        // MIN % −1 == 0 is inside the [−m, m] envelope
        let r = Interval::exact(MIN).rem(Interval::exact(-1));
        assert!(r.contains(0));
    }

    #[test]
    fn neg_saturates_min() {
        assert_eq!(Interval::exact(MIN).neg(), Interval::exact(MAX));
        assert_eq!(Interval::new(MIN, 5).neg(), Interval::new(-5, MAX));
        assert_eq!(Interval::new(-3, 7).neg(), Interval::new(-7, 3));
    }

    #[test]
    fn shl_clamps_amounts_and_saturates() {
        // amounts outside [0, 63] clamp, result saturates
        assert_eq!(Interval::exact(1).shl(Interval::exact(100)), Interval::exact(MAX));
        assert_eq!(Interval::exact(1).shl(Interval::exact(-5)), Interval::exact(1));
        assert_eq!(Interval::exact(-1).shl(Interval::exact(63)), Interval::exact(MIN));
        // zero-spanning base keeps 0 in the result
        let s = Interval::new(-1, 2).shl(Interval::exact(2));
        assert!(s.contains(0) && s.contains(-4) && s.contains(8));
    }

    #[test]
    fn shr_is_exact_at_extremes() {
        assert_eq!(Interval::exact(MIN).shr(Interval::exact(63)), Interval::exact(-1));
        assert_eq!(Interval::exact(MAX).shr(Interval::exact(63)), Interval::exact(0));
        assert_eq!(Interval::exact(-16).shr(Interval::exact(2)), Interval::exact(-4));
        // amount clamped: >> 100 behaves as >> 63
        assert_eq!(Interval::exact(MIN).shr(Interval::exact(100)), Interval::exact(-1));
    }

    #[test]
    fn touches_rails_flags_possible_saturation() {
        assert!(Interval::TOP.touches_rails());
        assert!(Interval::exact(MAX).touches_rails());
        assert!(Interval::exact(MIN).touches_rails());
        assert!(!Interval::new(MIN + 1, MAX - 1).touches_rails());
        // the gate in action: a provably-unsaturated add
        let safe = Interval::new(0, 1 << 24).add(Interval::new(0, 1 << 24));
        assert!(!safe.touches_rails());
        // …and one that may have saturated
        let unsafe_ = Interval::new(0, MAX).add(Interval::exact(1));
        assert!(unsafe_.touches_rails());
    }

    // ---- refinements: empty edges and singleton collapse ----------------

    #[test]
    fn refine_eq_is_meet() {
        assert_eq!(
            refine_eq(Interval::new(0, 10), Interval::new(5, 20)),
            Some((Interval::new(5, 10), Interval::new(5, 10)))
        );
        assert_eq!(refine_eq(Interval::new(0, 10), Interval::new(11, 20)), None);
    }

    #[test]
    fn refine_ne_trims_singletons_only() {
        // d = [0,10], o = {0}: lo bumps to 1
        assert_eq!(
            refine_ne(Interval::new(0, 10), Interval::exact(0)),
            Some((Interval::new(1, 10), Interval::exact(0)))
        );
        // both exact and equal: dead edge
        assert_eq!(refine_ne(Interval::exact(7), Interval::exact(7)), None);
        // singleton d trimmed to empty from both ends is impossible; the
        // hi-trim path:
        assert_eq!(
            refine_ne(Interval::new(0, 10), Interval::exact(10)),
            Some((Interval::new(0, 9), Interval::exact(10)))
        );
        // non-singleton o: no refinement
        assert_eq!(
            refine_ne(Interval::new(0, 10), Interval::new(3, 4)),
            Some((Interval::new(0, 10), Interval::new(3, 4)))
        );
        // saturating trim at the rails must not wrap
        assert_eq!(
            refine_ne(Interval::new(MIN, MIN), Interval::exact(MIN)),
            None,
            "exact MIN vs MIN is a dead edge, not a wrapped interval"
        );
    }

    #[test]
    fn refine_lt_gt_saturate_at_rails() {
        // d < o with o.hi = MIN: impossible (nothing is < MIN)
        assert_eq!(refine_lt(Interval::TOP, Interval::exact(MIN)), None);
        // d > o with o.lo = MAX: impossible
        assert_eq!(refine_gt(Interval::TOP, Interval::exact(MAX)), None);
        // d < MAX keeps everything except MAX itself on the taken edge
        let (d, o) = refine_lt(Interval::TOP, Interval::exact(MAX)).unwrap();
        assert_eq!(d, Interval::new(MIN, MAX - 1));
        assert_eq!(o, Interval::exact(MAX));
    }

    #[test]
    fn refine_le_ge_tighten_both_sides() {
        let (d, o) = refine_le(Interval::new(0, 100), Interval::new(-5, 10)).unwrap();
        assert_eq!(d, Interval::new(0, 10));
        assert_eq!(o, Interval::new(0, 10));
        let (d, o) = refine_ge(Interval::new(0, 100), Interval::new(50, 200)).unwrap();
        assert_eq!(d, Interval::new(50, 100));
        assert_eq!(o, Interval::new(50, 100));
        // dead edges
        assert_eq!(refine_le(Interval::new(11, 20), Interval::new(0, 10)), None);
        assert_eq!(refine_ge(Interval::new(0, 10), Interval::new(11, 20)), None);
    }
}
