//! The compile-once policy API — the host boundary for every case study.
//!
//! The paper's central claim is that generated code should run inside real
//! systems at real-system speed: §5 compiles candidates to eBPF so the
//! kernel hosts them natively. This module generalizes that pipeline from
//! the congestion-control study to *all* templates. A [`CompiledPolicy`] is
//! produced once per candidate (parse → mode-check → lower → **verify**)
//! and then executed on the host's hot path with zero allocation — the
//! DSL interpreter survives only as the bit-for-bit reference oracle in
//! the equivalence tests.
//!
//! Two pieces:
//!
//! * [`CtxLayout`] — the per-candidate context ABI. Instead of a fixed,
//!   mode-wide feature map (the old `cong_control`-only `cc_ctx_features`
//!   array), the layout assigns one `LdCtx` slot to each feature the
//!   expression actually reads, in first-use order. The verifier receives
//!   the features' declared intervals per slot, so mode-specific domain
//!   knowledge ("`server.speed` is never zero") reaches the interval
//!   analysis uniformly for cache, kernel, and lb candidates.
//! * [`CompiledPolicy`] — the verified artifact: bytecode + layout +
//!   verification outcome. [`CompiledPolicy::run`] executes the program
//!   against a caller-owned context slab and scratch map; reusing the
//!   buffers makes the steady-state hot path allocation-free.
//!
//! ## Verification strictness per mode
//!
//! Kernel candidates must verify completely — a possible division by zero
//! is a *compile-time rejection*, exactly the §5.0.2 "the eBPF verifier is
//! the Checker" contract. Userspace templates (cache, lb) have a defined
//! runtime fallback instead: the host latches the first fault and the
//! study scores the candidate as a hard failure. For those modes a
//! division the interval analysis cannot prove safe is recorded as
//! [`Verification::MayFault`] and deferred to the VM's runtime guard; all
//! structural obligations (bounds, initialization, termination) still hold
//! for compiler-emitted code, and the VM re-checks them defensively anyway.

use crate::batch::{self, BatchCtx, BatchFault, BatchPlan, BatchScratch};
use crate::isa::Program;
use crate::lower::{self, LowerError, SPILL_SLOTS};
use crate::verifier::{verify, Interval, VerifyEnv, VerifyError};
use crate::vm::{execute_verified, VmError};
use policysmith_dsl::check::{CheckReport, DEFAULT_MAX_DEPTH, DEFAULT_MAX_SIZE};
use policysmith_dsl::{check_with_warnings, EvalError, Expr, Feature, FeatureEnv, Mode};
use std::fmt;

/// Node-count budget for kernel candidates (tighter than the userspace
/// templates' [`DEFAULT_MAX_SIZE`]: kernel code must stay small).
pub const KERNEL_MAX_SIZE: usize = 256;
/// Expression-depth budget for kernel candidates (tighter than the
/// userspace templates' [`DEFAULT_MAX_DEPTH`]).
pub const KERNEL_MAX_DEPTH: usize = 24;

/// Node-count and depth budgets applied by [`CompiledPolicy::compile`].
pub fn mode_budgets(mode: Mode) -> (usize, usize) {
    match mode {
        Mode::Kernel => (KERNEL_MAX_SIZE, KERNEL_MAX_DEPTH),
        Mode::Cache | Mode::Lb | Mode::Aqm => (DEFAULT_MAX_SIZE, DEFAULT_MAX_DEPTH),
    }
}

/// The context ABI of one compiled candidate: which feature lives in which
/// `LdCtx` slot. Slots are assigned in first-use order of the expression,
/// so the layout is minimal (hosts fill only what the candidate reads) and
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CtxLayout {
    mode: Mode,
    features: Vec<Feature>,
}

impl CtxLayout {
    /// Layout covering exactly the features `e` reads, for template `mode`.
    pub fn for_expr(e: &Expr, mode: Mode) -> CtxLayout {
        CtxLayout { mode, features: e.features() }
    }

    /// The template mode this layout was built for.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Features in slot order: `features()[k]` lives in `ctx[k]`.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of context slots.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Does the candidate read no features at all?
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Slot of `f`, if the layout contains it.
    pub fn slot(&self, f: Feature) -> Option<u16> {
        self.features.iter().position(|&g| g == f).map(|i| i as u16)
    }

    /// The verification environment implied by this layout: each slot is
    /// bounded by its feature's declared range (how domain knowledge like
    /// "`mss` is never zero" reaches the interval analysis), plus the
    /// spill-sized scratch map.
    pub fn verify_env(&self) -> VerifyEnv {
        VerifyEnv {
            ctx_ranges: self.features.iter().map(|f| f.range()).collect(),
            map_slots: SPILL_SLOTS,
        }
    }

    /// Materialize the context slab from a feature environment, reusing
    /// `buf` (allocation-free once `buf` has reached capacity).
    ///
    /// Values are passed through unclamped; hosts are responsible for
    /// honouring the declared feature ranges (the cc harness clamps in its
    /// `FeatureEnv`). A host that feeds an out-of-range zero divisor gets
    /// the VM's runtime guard, not undefined behaviour.
    pub fn fill(&self, env: &impl FeatureEnv, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend(self.features.iter().map(|&f| env.feature(f)));
    }
}

/// Outcome of the static verification stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Verification {
    /// The interval analysis proved the program fault-free; `r0` is bounded.
    Verified { r0: Interval },
    /// Userspace modes only: a division the analysis could not prove safe.
    /// The program is structurally sound and terminates, but `run` may
    /// return a div-by-zero fault the host must absorb (latched-error
    /// contract). The diagnostic is the verifier's rejection, kept for the
    /// generator feedback loop.
    MayFault { diagnostic: String },
}

/// Where in the compile-once pipeline a candidate died.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Template rule violations (floats, cross-mode features, budgets).
    Check(CheckReport),
    /// DSL → bytecode lowering failure (float literals).
    Lower(LowerError),
    /// Static verifier rejection (kernel mode: includes unguarded division).
    Verify(VerifyError),
}

impl CompileError {
    /// Stage name for compile-rate accounting (§5.0.3).
    pub fn stage(&self) -> &'static str {
        match self {
            CompileError::Check(_) => "check",
            CompileError::Lower(_) => "lower",
            CompileError::Verify(_) => "verify",
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Check(report) => write!(f, "{}", report.stderr().trim_end()),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A runtime fault observed while hosting a policy — either from the VM
/// (compiled hot path) or from the reference interpreter (oracle hosts).
/// Hosts latch the first fault and degrade per their documented fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeFault {
    /// A fault raised by the bytecode VM (the compiled hot path).
    Vm(VmError),
    /// A fault raised by the reference interpreter (oracle hosts only).
    Interp(EvalError),
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeFault::Vm(e) => write!(f, "{e}"),
            RuntimeFault::Interp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeFault {}

/// A candidate that survived the compile-once pipeline: checked, lowered,
/// verified, ready for zero-allocation execution.
///
/// A `CompiledPolicy` is immutable owned data (`Send + Sync + Clone`): a
/// serving runtime may publish one through a lock-free handle and let any
/// number of threads execute it concurrently — [`run`](Self::run) takes
/// `&self` and keeps all mutable state in caller-owned buffers. The
/// assertion below makes that contract a compile-time fact, not a habit.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPolicy {
    expr: Expr,
    layout: CtxLayout,
    program: Program,
    verification: Verification,
    batch_plan: BatchPlan,
}

// The serving-runtime contract: policies cross threads and are shared
// behind swap handles. Breaking it (an Rc, a Cell) must fail to compile.
const _: () = {
    const fn requires_send_sync_clone<T: Send + Sync + Clone>() {}
    requires_send_sync_clone::<CompiledPolicy>()
};

impl CompiledPolicy {
    /// Run the full pipeline on a parsed candidate: template check (with
    /// [`mode_budgets`]) → per-candidate layout → lowering → verification
    /// against the layout's feature intervals.
    pub fn compile(e: &Expr, mode: Mode) -> Result<CompiledPolicy, CompileError> {
        let (max_size, max_depth) = mode_budgets(mode);
        let report = check_with_warnings(e, mode, max_size, max_depth);
        if !report.ok() {
            return Err(CompileError::Check(report));
        }
        let layout = CtxLayout::for_expr(e, mode);
        let program = lower::compile(e, &layout).map_err(CompileError::Lower)?;
        let verification = match verify(&program, &layout.verify_env()) {
            Ok(r0) => Verification::Verified { r0 },
            Err(err @ VerifyError::DivByZeroPossible { .. }) if mode != Mode::Kernel => {
                Verification::MayFault { diagnostic: err.to_string() }
            }
            Err(err) => return Err(CompileError::Verify(err)),
        };
        let batch_plan = BatchPlan::for_program(&program);
        Ok(CompiledPolicy { expr: e.clone(), layout, program, verification, batch_plan })
    }

    /// The template mode this policy was compiled for.
    pub fn mode(&self) -> Mode {
        self.layout.mode
    }

    /// The source expression — retained as the differential oracle: hosts
    /// never interpret it on the hot path, but the equivalence tests hold
    /// `dsl::eval` of this tree as the specification of `run`.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The context ABI hosts must fill.
    pub fn layout(&self) -> &CtxLayout {
        &self.layout
    }

    /// The lowered bytecode.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The verification outcome.
    pub fn verification(&self) -> &Verification {
        &self.verification
    }

    /// Provable `r0` bounds, when fully verified.
    pub fn r0_bounds(&self) -> Option<Interval> {
        match self.verification {
            Verification::Verified { r0 } => Some(r0),
            Verification::MayFault { .. } => None,
        }
    }

    /// Can `run` return a fault? `false` for fully verified programs.
    pub fn may_fault(&self) -> bool {
        matches!(self.verification, Verification::MayFault { .. })
    }

    /// Execute against a context slab laid out per [`Self::layout`] and a
    /// scratch map of at least [`SPILL_SLOTS`] slots. Allocation-free,
    /// via the verified-program fast path (no fuel counter, no per-insn
    /// validation — the pipeline already proved them unnecessary).
    ///
    /// For fully verified policies `run` cannot fail;
    /// [`Verification::MayFault`] policies may return
    /// `VmError::DivByZero`. Undersized buffers are a caller contract
    /// violation and panic.
    pub fn run(&self, ctx: &[i64], map: &mut [i64]) -> Result<i64, VmError> {
        execute_verified(&self.program, ctx, map)
    }

    /// Fill `ctx_buf` from `env` (per the layout) and [`run`](Self::run).
    /// The host keeps both buffers across calls, making the steady-state
    /// path allocation-free.
    pub fn run_with_env(
        &self,
        env: &impl FeatureEnv,
        ctx_buf: &mut Vec<i64>,
        map: &mut [i64],
    ) -> Result<i64, VmError> {
        self.layout.fill(env, ctx_buf);
        self.run(ctx_buf, map)
    }

    /// One-shot convenience for tests and docs: allocates fresh buffers.
    pub fn eval_once(&self, env: &impl FeatureEnv) -> Result<i64, VmError> {
        let mut ctx = Vec::with_capacity(self.layout.len());
        let mut map = vec![0i64; SPILL_SLOTS];
        self.run_with_env(env, &mut ctx, &mut map)
    }

    /// How this policy executes in batch (classified once at compile time).
    pub fn batch_plan(&self) -> BatchPlan {
        self.batch_plan
    }

    /// Does the program write the scratch map? `false` for everything the
    /// lowerer emits without register spills — batch hosts use this to skip
    /// per-row map resets.
    pub fn writes_map(&self) -> bool {
        self.batch_plan.writes_map
    }

    /// Score every row of `batch` in one call, appending one result per
    /// row to `out`. Observably identical to [`run`](Self::run) once per
    /// row in ascending row order sharing `map` — the scalar path is the
    /// executable spec (see [`crate::batch`]); straight-line map-free
    /// programs (everything the lowerer emits spill-free) take the
    /// column-vector engine instead of a per-row loop.
    ///
    /// The batch must have at least [`CtxLayout::len`] columns, all filled.
    pub fn run_batch(
        &self,
        batch: &BatchCtx,
        scratch: &mut BatchScratch,
        map: &mut [i64],
        out: &mut Vec<Result<i64, VmError>>,
    ) {
        batch::run_batch(&self.program, self.batch_plan, batch, scratch, map, out)
    }

    /// Fused "score everything, pick the smallest": returns the row index
    /// of the minimum score without materializing a score vector. Ties
    /// break to the lowest row; a fault aborts with the lowest faulting
    /// row. Panics on an empty batch.
    pub fn run_batch_argmin(
        &self,
        batch: &BatchCtx,
        scratch: &mut BatchScratch,
        map: &mut [i64],
    ) -> Result<usize, BatchFault> {
        batch::run_batch_argmin(&self.program, self.batch_plan, batch, scratch, map)
    }

    /// [`run_batch_argmin`](Self::run_batch_argmin)'s mirror for
    /// maximum-score hosts (cache eviction picks the *worst* object).
    pub fn run_batch_argmax(
        &self,
        batch: &BatchCtx,
        scratch: &mut BatchScratch,
        map: &mut [i64],
    ) -> Result<usize, BatchFault> {
        batch::run_batch_argmax(&self.program, self.batch_plan, batch, scratch, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::env::MapEnv;
    use policysmith_dsl::{eval, parse};

    fn cc_env() -> MapEnv {
        MapEnv::new()
            .with(Feature::Cwnd, 20)
            .with(Feature::SrttUs, 55_000)
            .with(Feature::MinRttUs, 40_000)
            .with(Feature::LossEvent, 0)
            .with(Feature::Mss, 1_448)
            .with(Feature::AckedBytes, 2_900)
    }

    #[test]
    fn kernel_pipeline_is_strict() {
        let ok = parse("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
        let p = CompiledPolicy::compile(&ok, Mode::Kernel).unwrap();
        assert!(!p.may_fault());
        assert!(p.r0_bounds().is_some());

        // unguarded division: rejected at compile time, stage = verify
        let bad = parse("cwnd / inflight").unwrap();
        let err = CompiledPolicy::compile(&bad, Mode::Kernel).unwrap_err();
        assert_eq!(err.stage(), "verify");
        assert!(err.to_string().contains("divisor"), "{err}");

        // cross-mode feature: stage = check
        let err = CompiledPolicy::compile(&parse("obj.count").unwrap(), Mode::Kernel).unwrap_err();
        assert_eq!(err.stage(), "check");

        // float: caught by the checker before lowering
        let err = CompiledPolicy::compile(&parse("cwnd * 1.5").unwrap(), Mode::Kernel).unwrap_err();
        assert_eq!(err.stage(), "check");
    }

    #[test]
    fn userspace_defers_division_faults_to_the_host() {
        let e = parse("1000 / server.queue_len").unwrap(); // may be zero
        let p = CompiledPolicy::compile(&e, Mode::Lb).unwrap();
        assert!(p.may_fault());
        assert!(p.r0_bounds().is_none());
        let env = MapEnv::new().with(Feature::ServerQueueLen, 0);
        assert!(matches!(p.eval_once(&env), Err(VmError::DivByZero { .. })));
        let env = MapEnv::new().with(Feature::ServerQueueLen, 4);
        assert_eq!(p.eval_once(&env).unwrap(), 250);
    }

    #[test]
    fn cache_features_lower_through_the_generic_layout() {
        // percentile aggregates and history features — none of which had a
        // slot in the old fixed kernel ABI — compile and execute
        let e = parse("if(obj.size > sizes.p50, 0 - obj.age, obj.count * 3)").unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Cache).unwrap();
        assert!(!p.may_fault());
        let env = MapEnv::new()
            .with(Feature::ObjSize, 100)
            .with(Feature::SizesPct(50), 80)
            .with(Feature::ObjAge, 7);
        assert_eq!(p.eval_once(&env).unwrap(), eval(&e, &env).unwrap());
        assert_eq!(p.eval_once(&env).unwrap(), -7);
    }

    #[test]
    fn layout_is_minimal_and_first_use_ordered() {
        let e = parse("srtt - min_rtt + srtt").unwrap();
        let l = CtxLayout::for_expr(&e, Mode::Kernel);
        assert_eq!(l.features(), &[Feature::SrttUs, Feature::MinRttUs]);
        assert_eq!(l.slot(Feature::SrttUs), Some(0));
        assert_eq!(l.slot(Feature::MinRttUs), Some(1));
        assert_eq!(l.slot(Feature::Cwnd), None);
        let venv = l.verify_env();
        assert_eq!(venv.ctx_ranges.len(), 2);
        assert_eq!(venv.ctx_ranges[0], Feature::SrttUs.range());
    }

    #[test]
    fn run_with_env_matches_the_interpreter() {
        let e = parse("cwnd * min_rtt / max(srtt, 1) + (acked / max(mss, 1))").unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        let env = cc_env();
        let mut ctx = Vec::new();
        let mut map = vec![0i64; SPILL_SLOTS];
        let got = p.run_with_env(&env, &mut ctx, &mut map).unwrap();
        assert_eq!(got, eval(&e, &env).unwrap());
        // buffers are reusable: second run, same answer, same capacity
        let cap = ctx.capacity();
        assert_eq!(p.run_with_env(&env, &mut ctx, &mut map).unwrap(), got);
        assert_eq!(ctx.capacity(), cap);
    }

    #[test]
    fn r0_bounds_are_sound() {
        let e = parse("clamp(cwnd * 2, 2, 1024)").unwrap();
        let p = CompiledPolicy::compile(&e, Mode::Kernel).unwrap();
        let r0 = p.r0_bounds().unwrap();
        assert!(r0.lo >= 2 && r0.hi <= 1024, "{r0:?}");
        let got = p.eval_once(&cc_env()).unwrap();
        assert!(r0.lo <= got && got <= r0.hi);
    }

    #[test]
    fn kernel_budgets_are_tighter() {
        // balanced sum of 200 ones: 399 nodes, shallow — inside the cache
        // budget (512) but over the kernel budget (256)
        let mut leaves: Vec<Expr> = (0..200).map(|_| Expr::Int(1)).collect();
        while leaves.len() > 1 {
            leaves = leaves
                .chunks(2)
                .map(|c| match c {
                    [a, b] => Expr::bin(policysmith_dsl::BinOp::Add, a.clone(), b.clone()),
                    [a] => a.clone(),
                    _ => unreachable!(),
                })
                .collect();
        }
        let e = leaves.pop().unwrap();
        assert!(CompiledPolicy::compile(&e, Mode::Cache).is_ok());
        let err = CompiledPolicy::compile(&e, Mode::Kernel).unwrap_err();
        assert_eq!(err.stage(), "check");
    }
}
