//! # policysmith-kbpf — an eBPF-like bytecode with a static verifier
//!
//! The congestion-control case study (§5 of the paper) runs LLM-generated
//! decision logic inside the Linux kernel by compiling it to eBPF and
//! letting **the eBPF verifier act as the framework's `Checker`**. This
//! crate rebuilds that substrate — and generalizes it into the
//! compile-once host boundary every case study consumes:
//!
//! * [`isa`] — a register bytecode closely modeled on eBPF (11 × `i64`
//!   registers, ALU + conditional forward jumps, context loads, scratch
//!   map);
//! * [`range`] — the shared signed-interval domain (transfer functions
//!   mirroring the saturating DSL semantics, branch refinements) consumed
//!   by the verifier here and by the eBPF emitter/model-verifier in
//!   `crates/ebpf`;
//! * [`verifier`] — a static verifier performing structural checks and an
//!   interval-domain abstract interpretation that rejects possible
//!   division-by-zero, uninitialized reads, out-of-bounds accesses, and any
//!   backward jump (so accepted programs provably terminate);
//! * [`vm`] — the interpreter, bit-for-bit equivalent to the DSL
//!   interpreter on verified programs;
//! * [`batch`] — structure-of-arrays batched evaluation
//!   ([`BatchCtx`] + `CompiledPolicy::run_batch` and fused
//!   argmin/argmax), spec'd by the scalar VM per row and
//!   differential-tested against it;
//! * [`lower`] — the DSL → kbpf compiler, parameterized by a context
//!   layout so any template's features lower;
//! * [`compile`] — the host-facing API: [`CtxLayout`] (per-candidate
//!   feature→slot ABI with mode-specific verification intervals) and
//!   [`CompiledPolicy`] (check → lower → verify once, then zero-allocation
//!   execution on the host's hot path).
//!
//! ```
//! use policysmith_kbpf::CompiledPolicy;
//! use policysmith_dsl::{parse, env::MapEnv, Feature, Mode};
//!
//! let expr = parse("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
//! let policy = CompiledPolicy::compile(&expr, Mode::Kernel).unwrap();
//! assert!(!policy.may_fault()); // fully verified: faults are impossible
//!
//! let env = MapEnv::new().with(Feature::Cwnd, 10).with(Feature::LossEvent, 1);
//! assert_eq!(policy.eval_once(&env).unwrap(), 5);
//! ```

pub mod batch;
pub mod compile;
pub mod isa;
pub mod lower;
pub mod range;
pub mod verifier;
pub mod vm;

pub use batch::{BatchCtx, BatchFault, BatchPlan, BatchScratch};
pub use compile::{
    mode_budgets, CompileError, CompiledPolicy, CtxLayout, RuntimeFault, Verification,
    KERNEL_MAX_DEPTH, KERNEL_MAX_SIZE,
};
pub use isa::{Insn, Op, Program, MAX_INSNS, REG_COUNT};
pub use lower::{LowerError, SPILL_SLOTS};
pub use range::Interval;
pub use verifier::{analyze, verify, AbsState, Analysis, VerifyEnv, VerifyError};
pub use vm::{execute, execute_verified, execute_with_fuel, VmError};
