//! # policysmith-kbpf — an eBPF-like bytecode with a static verifier
//!
//! The congestion-control case study (§5 of the paper) runs LLM-generated
//! decision logic inside the Linux kernel by compiling it to eBPF and
//! letting **the eBPF verifier act as the framework's `Checker`**. This
//! crate rebuilds that substrate:
//!
//! * [`isa`] — a register bytecode closely modeled on eBPF (11 × `i64`
//!   registers, ALU + conditional forward jumps, context loads, scratch
//!   map);
//! * [`verifier`] — a static verifier performing structural checks and an
//!   interval-domain abstract interpretation that rejects possible
//!   division-by-zero, uninitialized reads, out-of-bounds accesses, and any
//!   backward jump (so accepted programs provably terminate);
//! * [`vm`] — the interpreter, bit-for-bit equivalent to the DSL
//!   interpreter on verified programs;
//! * [`lower`] — the DSL → kbpf compiler plus the `cong_control` context
//!   layout shared with `policysmith-cc`.
//!
//! ```
//! use policysmith_kbpf::{compile, verify, execute, cc_verify_env, build_ctx, SPILL_SLOTS};
//! use policysmith_dsl::{parse, env::MapEnv, Feature};
//!
//! let expr = parse("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
//! let prog = compile(&expr).unwrap();
//! verify(&prog, &cc_verify_env()).unwrap();
//!
//! let env = MapEnv::new().with(Feature::Cwnd, 10).with(Feature::LossEvent, 1);
//! let mut map = vec![0i64; SPILL_SLOTS];
//! assert_eq!(execute(&prog, &build_ctx(&env), &mut map).unwrap(), 5);
//! ```

pub mod isa;
pub mod lower;
pub mod verifier;
pub mod vm;

pub use isa::{Insn, Op, Program, MAX_INSNS, REG_COUNT};
pub use lower::{build_ctx, cc_ctx_features, cc_verify_env, compile, LowerError, SPILL_SLOTS};
pub use verifier::{verify, Interval, VerifyEnv, VerifyError};
pub use vm::{execute, execute_with_fuel, VmError};
