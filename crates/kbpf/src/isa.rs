//! The kbpf instruction set.
//!
//! A deliberately close cousin of (classic) eBPF: 11 general `i64`
//! registers, ALU ops with register/immediate variants, conditional forward
//! jumps, loads from a read-only **context** array (the kernel-module
//! scaffold's view of connection state, cf. §5.0.2's BPF-map hand-off), and
//! load/store on a small scratch **map**. Divergences from real eBPF are
//! intentional and documented:
//!
//! * arithmetic saturates instead of wrapping (matching the DSL spec so the
//!   interpreter and VM agree bit-for-bit);
//! * there is no packet access, no helpers, no call instruction — the
//!   `cong_control` template needs none;
//! * backward jumps are rejected by the verifier (real eBPF allows bounded
//!   loops; the paper's constraint "no unbounded loops" is enforced here by
//!   construction).

use std::fmt;

/// Number of general-purpose registers (`r0` holds the return value).
pub const REG_COUNT: u8 = 11;

/// Hard cap on program length, mirroring the kernel's instruction budget.
pub const MAX_INSNS: usize = 4096;

/// Operation codes. `*Imm` variants use the instruction's `imm` field as the
/// second operand; `*Reg` variants use register `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = imm`
    MovImm,
    /// `dst = src`
    MovReg,
    AddImm,
    AddReg,
    SubImm,
    SubReg,
    MulImm,
    MulReg,
    /// Signed division; the verifier must prove the divisor nonzero.
    DivImm,
    DivReg,
    /// Signed remainder; same nonzero obligation.
    RemImm,
    RemReg,
    /// `dst = -dst` (saturating).
    Neg,
    /// Left shift, amount clamped to `[0, 63]`, saturating result.
    LshImm,
    LshReg,
    /// Arithmetic right shift, amount clamped to `[0, 63]`.
    RshImm,
    RshReg,
    /// Unconditional forward jump by `off`.
    Ja,
    /// Conditional jumps: `if dst <cond> operand { pc += 1 + off }`.
    JeqImm,
    JeqReg,
    JneImm,
    JneReg,
    JltImm,
    JltReg,
    JleImm,
    JleReg,
    JgtImm,
    JgtReg,
    JgeImm,
    JgeReg,
    /// `dst = ctx[imm]` — read-only feature load.
    LdCtx,
    /// `dst = map[imm]` — scratch map load.
    LdMap,
    /// `map[imm] = src` — scratch map store.
    StMap,
    /// Return `r0`.
    Exit,
}

impl Op {
    /// Is this op any kind of jump?
    pub fn is_jump(self) -> bool {
        use Op::*;
        matches!(
            self,
            Ja | JeqImm
                | JeqReg
                | JneImm
                | JneReg
                | JltImm
                | JltReg
                | JleImm
                | JleReg
                | JgtImm
                | JgtReg
                | JgeImm
                | JgeReg
        )
    }

    /// Does this op use the `src` register as an input?
    pub fn reads_src(self) -> bool {
        use Op::*;
        matches!(
            self,
            MovReg
                | AddReg
                | SubReg
                | MulReg
                | DivReg
                | RemReg
                | LshReg
                | RshReg
                | JeqReg
                | JneReg
                | JltReg
                | JleReg
                | JgtReg
                | JgeReg
                | StMap
        )
    }

    /// Does this op read the `dst` register before (possibly) writing it?
    pub fn reads_dst(self) -> bool {
        use Op::*;
        matches!(
            self,
            AddImm
                | AddReg
                | SubImm
                | SubReg
                | MulImm
                | MulReg
                | DivImm
                | DivReg
                | RemImm
                | RemReg
                | Neg
                | LshImm
                | LshReg
                | RshImm
                | RshReg
                | JeqImm
                | JeqReg
                | JneImm
                | JneReg
                | JltImm
                | JltReg
                | JleImm
                | JleReg
                | JgtImm
                | JgtReg
                | JgeImm
                | JgeReg
        )
    }

    /// Does this op write the `dst` register?
    pub fn writes_dst(self) -> bool {
        use Op::*;
        matches!(
            self,
            MovImm
                | MovReg
                | AddImm
                | AddReg
                | SubImm
                | SubReg
                | MulImm
                | MulReg
                | DivImm
                | DivReg
                | RemImm
                | RemReg
                | Neg
                | LshImm
                | LshReg
                | RshImm
                | RshReg
                | LdCtx
                | LdMap
        )
    }
}

/// One instruction. `off` is a *forward* relative jump distance: the taken
/// target is `pc + 1 + off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    pub op: Op,
    pub dst: u8,
    pub src: u8,
    pub imm: i64,
    pub off: i32,
}

impl Insn {
    /// Non-jump instruction constructor.
    pub fn new(op: Op, dst: u8, src: u8, imm: i64) -> Self {
        Insn { op, dst, src, imm, off: 0 }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        let (d, s, i, o) = (self.dst, self.src, self.imm, self.off);
        match self.op {
            MovImm => write!(f, "r{d} = {i}"),
            MovReg => write!(f, "r{d} = r{s}"),
            AddImm => write!(f, "r{d} += {i}"),
            AddReg => write!(f, "r{d} += r{s}"),
            SubImm => write!(f, "r{d} -= {i}"),
            SubReg => write!(f, "r{d} -= r{s}"),
            MulImm => write!(f, "r{d} *= {i}"),
            MulReg => write!(f, "r{d} *= r{s}"),
            DivImm => write!(f, "r{d} /= {i}"),
            DivReg => write!(f, "r{d} /= r{s}"),
            RemImm => write!(f, "r{d} %= {i}"),
            RemReg => write!(f, "r{d} %= r{s}"),
            Neg => write!(f, "r{d} = -r{d}"),
            LshImm => write!(f, "r{d} <<= {i}"),
            LshReg => write!(f, "r{d} <<= r{s}"),
            RshImm => write!(f, "r{d} >>= {i}"),
            RshReg => write!(f, "r{d} >>= r{s}"),
            Ja => write!(f, "goto +{o}"),
            JeqImm => write!(f, "if r{d} == {i} goto +{o}"),
            JeqReg => write!(f, "if r{d} == r{s} goto +{o}"),
            JneImm => write!(f, "if r{d} != {i} goto +{o}"),
            JneReg => write!(f, "if r{d} != r{s} goto +{o}"),
            JltImm => write!(f, "if r{d} < {i} goto +{o}"),
            JltReg => write!(f, "if r{d} < r{s} goto +{o}"),
            JleImm => write!(f, "if r{d} <= {i} goto +{o}"),
            JleReg => write!(f, "if r{d} <= r{s} goto +{o}"),
            JgtImm => write!(f, "if r{d} > {i} goto +{o}"),
            JgtReg => write!(f, "if r{d} > r{s} goto +{o}"),
            JgeImm => write!(f, "if r{d} >= {i} goto +{o}"),
            JgeReg => write!(f, "if r{d} >= r{s} goto +{o}"),
            LdCtx => write!(f, "r{d} = ctx[{i}]"),
            LdMap => write!(f, "r{d} = map[{i}]"),
            StMap => write!(f, "map[{i}] = r{s}"),
            Exit => write!(f, "exit"),
        }
    }
}

/// A complete kbpf program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    pub insns: Vec<Insn>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

impl fmt::Display for Program {
    /// Kernel-style disassembly, one instruction per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, insn) in self.insns.iter().enumerate() {
            writeln!(f, "{pc:4}: {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Insn::new(Op::MovImm, 1, 0, 42).to_string(), "r1 = 42");
        assert_eq!(Insn::new(Op::AddReg, 2, 3, 0).to_string(), "r2 += r3");
        assert_eq!(Insn::new(Op::LdCtx, 1, 0, 8).to_string(), "r1 = ctx[8]");
        assert_eq!(
            Insn { op: Op::JeqImm, dst: 1, src: 0, imm: 0, off: 3 }.to_string(),
            "if r1 == 0 goto +3"
        );
        assert_eq!(Insn::new(Op::Exit, 0, 0, 0).to_string(), "exit");
    }

    #[test]
    fn op_classification() {
        assert!(Op::Ja.is_jump());
        assert!(Op::JgeReg.is_jump());
        assert!(!Op::Exit.is_jump());
        assert!(Op::StMap.reads_src());
        assert!(!Op::StMap.writes_dst());
        assert!(Op::LdCtx.writes_dst());
        assert!(!Op::LdCtx.reads_dst());
        assert!(Op::AddReg.reads_dst() && Op::AddReg.reads_src() && Op::AddReg.writes_dst());
        assert!(Op::MovReg.reads_src() && !Op::MovReg.reads_dst());
    }

    #[test]
    fn program_disasm_multiline() {
        let p =
            Program { insns: vec![Insn::new(Op::MovImm, 0, 0, 7), Insn::new(Op::Exit, 0, 0, 0)] };
        let s = p.to_string();
        assert!(s.contains("   0: r0 = 7"));
        assert!(s.contains("   1: exit"));
    }
}
