//! Batched structure-of-arrays evaluation for verified programs.
//!
//! The scalar fast path ([`execute_verified`]) scores one context per call;
//! dispatch loops that score a whole fleet pay a call, a fill plan, and a
//! register-file setup per row. This module amortizes all three: a
//! [`BatchCtx`] lays N contexts out **column-major** (one contiguous column
//! per feature slot, one row per server/object) and [`run_batch`] executes
//! the program **instruction-major** — each instruction streams over whole
//! register columns in a tight loop the compiler can autovectorize.
//!
//! ## Semantics: spec'd by the scalar VM
//!
//! `run_batch(prog, batch, …, out)` is defined to be observably identical to
//!
//! ```text
//! for row in 0..batch.rows() {
//!     out.push(execute_verified(prog, &row_ctx(batch, row), map));
//! }
//! ```
//!
//! i.e. one scalar run per row, **in ascending row order, sharing the map**.
//! This makes the scalar VM the executable spec of the batched engine, the
//! same way `dsl::eval` is the spec of the scalar VM — and the differential
//! suite in `tests/batch_differential.rs` pins it per row, fault rows
//! included. Two execution strategies implement that contract:
//!
//! * **Vector path** — programs that are straight-line (no jumps) and
//!   map-free, which is everything the expression lowerer emits for
//!   spill-free policies. Each instruction runs across all rows before the
//!   next instruction starts; since execution order equals `pc` order for a
//!   straight-line program, per-row results and first-fault `pc`s match the
//!   scalar VM exactly. A row that faults keeps streaming (its lanes hold
//!   garbage) but only its **first** fault is recorded and reported, which
//!   is precisely what the scalar run would have returned.
//! * **Row fallback** — anything with jumps or map traffic gathers one row
//!   at a time into a scratch buffer and calls [`execute_verified`], making
//!   the contract hold structurally.
//!
//! The fused reductions ([`run_batch_argmin`] / [`run_batch_argmax`]) never
//! materialize the score vector for the caller and pin two edge contracts:
//! **ties break to the lowest row index**, and a fault aborts the reduction
//! with the lowest faulting row (what a scalar scan would hit first).
//!
//! Like `execute_verified`, everything here requires a program that passed
//! the verifier: registers are provably written before read (so register
//! columns are *not* cleared between calls), ctx/map indices are provably
//! in bounds, and the only reachable fault is division by zero.
//!
//! [`execute_verified`]: crate::vm::execute_verified
//! [`run_batch`]: BatchCtx

use crate::isa::{Op, Program};
use crate::vm::{execute_verified, VmError};
use policysmith_dsl::eval::{div_sat, rem_sat, shl_sat, shr_arith};

/// N evaluation contexts in structure-of-arrays (column-major) layout.
///
/// Column `c` (one per [`CtxLayout`] feature slot) occupies the contiguous
/// range `data[c * rows .. (c + 1) * rows]`; row `r` of column `c` is the
/// value feature `c` takes for object `r`. Hosts fill whole columns at a
/// time ([`column_mut`] / [`broadcast`]) — the per-row fill plan of the
/// scalar path disappears.
///
/// [`CtxLayout`]: crate::compile::CtxLayout
/// [`column_mut`]: BatchCtx::column_mut
/// [`broadcast`]: BatchCtx::broadcast
#[derive(Debug, Clone, Default)]
pub struct BatchCtx {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl BatchCtx {
    /// An empty batch with `cols` feature slots and zero rows.
    pub fn new(cols: usize) -> Self {
        BatchCtx { rows: 0, cols, data: Vec::new() }
    }

    /// A zero-filled batch with `cols` feature slots and `rows` rows.
    pub fn with_rows(cols: usize, rows: usize) -> Self {
        BatchCtx { rows, cols, data: vec![0; cols * rows] }
    }

    /// Number of rows (objects) in the batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature slots) in the batch.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resize to `rows` rows, keeping the column count.
    ///
    /// Cell values are unspecified afterwards (the column-major layout
    /// re-maps wholesale); callers are expected to refill every column they
    /// use. No allocation happens when shrinking or when a previous larger
    /// size already reserved capacity.
    pub fn set_rows(&mut self, rows: usize) {
        self.rows = rows;
        self.data.resize(self.cols * rows, 0);
    }

    /// Read-only view of column `col`.
    pub fn column(&self, col: usize) -> &[i64] {
        &self.data[col * self.rows..(col + 1) * self.rows]
    }

    /// Mutable view of column `col` — the bulk fill entry point.
    pub fn column_mut(&mut self, col: usize) -> &mut [i64] {
        &mut self.data[col * self.rows..(col + 1) * self.rows]
    }

    /// Set every row of column `col` to `v` (fleet-invariant features:
    /// `req.size`, `now`, …).
    pub fn broadcast(&mut self, col: usize, v: i64) {
        self.column_mut(col).fill(v);
    }

    /// Set a single cell.
    pub fn set(&mut self, row: usize, col: usize, v: i64) {
        self.data[col * self.rows + row] = v;
    }

    /// Read a single cell.
    pub fn get(&self, row: usize, col: usize) -> i64 {
        self.data[col * self.rows + row]
    }

    /// Build a batch from row-major context slices (test/verification
    /// convenience; hot paths fill columns directly).
    ///
    /// # Panics
    /// If any row's length differs from `cols`.
    pub fn from_rows(cols: usize, row_ctxs: &[&[i64]]) -> Self {
        let mut b = BatchCtx::with_rows(cols, row_ctxs.len());
        for (r, ctx) in row_ctxs.iter().enumerate() {
            assert_eq!(ctx.len(), cols, "row {r} has wrong width");
            for (c, &v) in ctx.iter().enumerate() {
                b.set(r, c, v);
            }
        }
        b
    }

    /// Gather row `r` into `buf` as a scalar ctx slice (row fallback path).
    fn gather_row(&self, r: usize, buf: &mut Vec<i64>) {
        buf.clear();
        buf.extend((0..self.cols).map(|c| self.data[c * self.rows + r]));
    }
}

/// Reusable scratch for batch execution: the column register file, the
/// per-row fault buffer, and the row-gather buffer. Allocated once per
/// dispatcher and recycled across calls; buffers only grow.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// 16 register columns × rows, masked-indexed like the scalar fast
    /// path. Stale values from previous calls are never observable: the
    /// verifier proved every register is written before read.
    regs: Vec<i64>,
    /// Per-row first fault, encoded as `pc + 1` (`0` = no fault). Only
    /// touched when the program can divide.
    fault: Vec<u32>,
    /// Row-major gather buffer for the fallback path.
    row: Vec<i64>,
}

impl BatchScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// How a program may be executed in batch, precomputed at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    /// Straight-line and map-free: eligible for the column-vector path.
    pub vectorizable: bool,
    /// Contains a `StMap` — the map must be treated as mutated per row.
    pub writes_map: bool,
    /// Contains a division or remainder — the only fault source the
    /// verifier leaves reachable, and the only reason to clear the
    /// per-row fault buffer.
    pub may_divide: bool,
}

impl BatchPlan {
    /// Classify `prog` (one linear scan; cached in `CompiledPolicy`).
    pub fn for_program(prog: &Program) -> BatchPlan {
        use Op::*;
        let mut vectorizable = true;
        let mut writes_map = false;
        let mut may_divide = false;
        for insn in &prog.insns {
            if insn.op.is_jump() || matches!(insn.op, LdMap | StMap) {
                vectorizable = false;
            }
            if matches!(insn.op, StMap) {
                writes_map = true;
            }
            if matches!(insn.op, DivImm | DivReg | RemImm | RemReg) {
                may_divide = true;
            }
        }
        BatchPlan { vectorizable, writes_map, may_divide }
    }
}

/// A fused reduction aborted because row `row` faulted.
///
/// `row` is the **lowest** faulting row index — exactly the fault a scalar
/// scan in ascending row order would have surfaced first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFault {
    pub row: usize,
    pub fault: VmError,
}

impl std::fmt::Display for BatchFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch row {}: {}", self.row, self.fault)
    }
}

impl std::error::Error for BatchFault {}

/// Mutable column pair `(dst, src)` from the register file — the split
/// borrow behind every two-register ALU op.
#[inline]
fn col_pair(regs: &mut [i64], rows: usize, d: usize, s: usize) -> (&mut [i64], &[i64]) {
    debug_assert_ne!(d, s);
    if d < s {
        let (lo, hi) = regs.split_at_mut(s * rows);
        (&mut lo[d * rows..(d + 1) * rows], &hi[..rows])
    } else {
        let (lo, hi) = regs.split_at_mut(d * rows);
        (&mut hi[..rows], &lo[s * rows..(s + 1) * rows])
    }
}

#[inline]
fn col_mut(regs: &mut [i64], rows: usize, c: usize) -> &mut [i64] {
    &mut regs[c * rows..(c + 1) * rows]
}

/// `dst[r] = f(dst[r], src[r])` across all rows, `dst == src` included.
#[inline]
fn bin_reg(regs: &mut [i64], rows: usize, d: usize, s: usize, f: impl Fn(i64, i64) -> i64) {
    if d == s {
        for x in col_mut(regs, rows, d) {
            *x = f(*x, *x);
        }
    } else {
        let (dc, sc) = col_pair(regs, rows, d, s);
        for (x, &y) in dc.iter_mut().zip(sc) {
            *x = f(*x, y);
        }
    }
}

/// Division-family op with a per-row zero guard. Faulting rows record
/// `pc + 1` in `fault` (first fault only) and keep their lane untouched;
/// they stay in the stream but their final value is never reported.
#[inline]
fn div_reg(
    regs: &mut [i64],
    rows: usize,
    d: usize,
    s: usize,
    fault: &mut [u32],
    pc: usize,
    f: impl Fn(i64, i64) -> i64,
) {
    if d == s {
        for (x, fl) in col_mut(regs, rows, d).iter_mut().zip(fault.iter_mut()) {
            if *x == 0 {
                if *fl == 0 {
                    *fl = pc as u32 + 1;
                }
            } else {
                *x = f(*x, *x);
            }
        }
    } else {
        let (dc, sc) = col_pair(regs, rows, d, s);
        for ((x, &b), fl) in dc.iter_mut().zip(sc).zip(fault.iter_mut()) {
            if b == 0 {
                if *fl == 0 {
                    *fl = pc as u32 + 1;
                }
            } else {
                *x = f(*x, b);
            }
        }
    }
}

/// The column-vector engine: one pass over the instruction stream, each
/// instruction applied to whole register columns. Requires
/// `plan.vectorizable`. On return `scratch.regs[..rows]` holds the `r0`
/// column and (when `plan.may_divide`) `scratch.fault[r]` holds `pc + 1`
/// of row `r`'s first fault.
fn run_vector(prog: &Program, batch: &BatchCtx, scratch: &mut BatchScratch, plan: BatchPlan) {
    debug_assert!(plan.vectorizable);
    let rows = batch.rows();
    // Growth-only resize: new lanes are zeroed once, stale lanes are fine —
    // verified programs never read a register before writing it.
    if scratch.regs.len() < 16 * rows {
        scratch.regs.resize(16 * rows, 0);
    }
    if plan.may_divide {
        scratch.fault.clear();
        scratch.fault.resize(rows, 0);
    }
    let BatchScratch { regs, fault, .. } = scratch;
    for (pc, insn) in prog.insns.iter().enumerate() {
        let d = (insn.dst & 15) as usize;
        let s = (insn.src & 15) as usize;
        use Op::*;
        match insn.op {
            MovImm => col_mut(regs, rows, d).fill(insn.imm),
            MovReg => {
                if d != s {
                    regs.copy_within(s * rows..(s + 1) * rows, d * rows);
                }
            }
            AddImm => {
                for x in col_mut(regs, rows, d) {
                    *x = x.saturating_add(insn.imm);
                }
            }
            AddReg => bin_reg(regs, rows, d, s, i64::saturating_add),
            SubImm => {
                for x in col_mut(regs, rows, d) {
                    *x = x.saturating_sub(insn.imm);
                }
            }
            SubReg => bin_reg(regs, rows, d, s, i64::saturating_sub),
            MulImm => {
                for x in col_mut(regs, rows, d) {
                    *x = x.saturating_mul(insn.imm);
                }
            }
            MulReg => bin_reg(regs, rows, d, s, i64::saturating_mul),
            DivImm => {
                if insn.imm == 0 {
                    for fl in fault.iter_mut() {
                        if *fl == 0 {
                            *fl = pc as u32 + 1;
                        }
                    }
                } else {
                    for x in col_mut(regs, rows, d) {
                        *x = div_sat(*x, insn.imm);
                    }
                }
            }
            DivReg => div_reg(regs, rows, d, s, fault, pc, div_sat),
            RemImm => {
                if insn.imm == 0 {
                    for fl in fault.iter_mut() {
                        if *fl == 0 {
                            *fl = pc as u32 + 1;
                        }
                    }
                } else {
                    for x in col_mut(regs, rows, d) {
                        *x = rem_sat(*x, insn.imm);
                    }
                }
            }
            RemReg => div_reg(regs, rows, d, s, fault, pc, rem_sat),
            Neg => {
                for x in col_mut(regs, rows, d) {
                    *x = x.saturating_neg();
                }
            }
            LshImm => {
                for x in col_mut(regs, rows, d) {
                    *x = shl_sat(*x, insn.imm);
                }
            }
            LshReg => bin_reg(regs, rows, d, s, shl_sat),
            RshImm => {
                for x in col_mut(regs, rows, d) {
                    *x = shr_arith(*x, insn.imm);
                }
            }
            RshReg => bin_reg(regs, rows, d, s, shr_arith),
            LdCtx => col_mut(regs, rows, d).copy_from_slice(batch.column(insn.imm as usize)),
            Exit => return,
            Ja | JeqImm | JeqReg | JneImm | JneReg | JltImm | JltReg | JleImm | JleReg | JgtImm
            | JgtReg | JgeImm | JgeReg | LdMap | StMap => {
                unreachable!("vector path requires a straight-line, map-free program")
            }
        }
    }
    unreachable!("verified program ended without an Exit");
}

/// Decode row `r`'s result after [`run_vector`].
#[inline]
fn vector_row_result(scratch: &BatchScratch, plan: BatchPlan, r: usize) -> Result<i64, VmError> {
    if plan.may_divide && scratch.fault[r] != 0 {
        Err(VmError::DivByZero { pc: scratch.fault[r] as usize - 1 })
    } else {
        Ok(scratch.regs[r])
    }
}

/// Score every row of `batch`, appending one result per row to `out`.
///
/// Observably identical to one [`execute_verified`] call per row in
/// ascending row order sharing `map` (see the module docs). All rows are
/// scored even when some fault — fault handling is the caller's policy.
///
/// # Panics
/// Under the same contract violations as `execute_verified`: an unverified
/// program, or a batch/map narrower than the program was verified against.
pub fn run_batch(
    prog: &Program,
    plan: BatchPlan,
    batch: &BatchCtx,
    scratch: &mut BatchScratch,
    map: &mut [i64],
    out: &mut Vec<Result<i64, VmError>>,
) {
    let rows = batch.rows();
    out.reserve(rows);
    if plan.vectorizable {
        run_vector(prog, batch, scratch, plan);
        out.extend((0..rows).map(|r| vector_row_result(scratch, plan, r)));
    } else {
        for r in 0..rows {
            let BatchScratch { row, .. } = scratch;
            batch.gather_row(r, row);
            out.push(execute_verified(prog, row, map));
        }
    }
}

/// Score every row and return the index of the **minimum** score without
/// materializing the score vector. Ties break to the lowest row index; a
/// fault aborts with the lowest faulting row (both pinned by
/// `tests/batch_differential.rs`).
///
/// # Panics
/// On an empty batch, and under the contract violations of [`run_batch`].
pub fn run_batch_argmin(
    prog: &Program,
    plan: BatchPlan,
    batch: &BatchCtx,
    scratch: &mut BatchScratch,
    map: &mut [i64],
) -> Result<usize, BatchFault> {
    fused_reduce(prog, plan, batch, scratch, map, |best, cand| cand < best)
}

/// [`run_batch_argmin`]'s mirror: index of the **maximum** score, ties to
/// the lowest row index, fault-abort at the lowest faulting row.
///
/// # Panics
/// On an empty batch, and under the contract violations of [`run_batch`].
pub fn run_batch_argmax(
    prog: &Program,
    plan: BatchPlan,
    batch: &BatchCtx,
    scratch: &mut BatchScratch,
    map: &mut [i64],
) -> Result<usize, BatchFault> {
    fused_reduce(prog, plan, batch, scratch, map, |best, cand| cand > best)
}

fn fused_reduce(
    prog: &Program,
    plan: BatchPlan,
    batch: &BatchCtx,
    scratch: &mut BatchScratch,
    map: &mut [i64],
    better: impl Fn(i64, i64) -> bool,
) -> Result<usize, BatchFault> {
    let rows = batch.rows();
    assert!(rows > 0, "fused reduction over an empty batch");
    if plan.vectorizable {
        run_vector(prog, batch, scratch, plan);
        if plan.may_divide {
            if let Some(r) = scratch.fault[..rows].iter().position(|&f| f != 0) {
                return Err(BatchFault {
                    row: r,
                    fault: VmError::DivByZero { pc: scratch.fault[r] as usize - 1 },
                });
            }
        }
        let scores = &scratch.regs[..rows];
        let mut best = 0usize;
        for (r, &v) in scores.iter().enumerate().skip(1) {
            if better(scores[best], v) {
                best = r;
            }
        }
        Ok(best)
    } else {
        let mut best = 0usize;
        let mut best_score = {
            let BatchScratch { row, .. } = &mut *scratch;
            batch.gather_row(0, row);
            execute_verified(prog, row, map).map_err(|fault| BatchFault { row: 0, fault })?
        };
        for r in 1..rows {
            let BatchScratch { row, .. } = &mut *scratch;
            batch.gather_row(r, row);
            let v =
                execute_verified(prog, row, map).map_err(|fault| BatchFault { row: r, fault })?;
            if better(best_score, v) {
                best = r;
                best_score = v;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Insn;

    fn prog(insns: Vec<Insn>) -> Program {
        Program { insns }
    }

    fn i(op: Op, dst: u8, src: u8, imm: i64) -> Insn {
        Insn::new(op, dst, src, imm)
    }

    /// r0 = ctx[0] * 3 - ctx[1]  (straight-line, no division)
    fn affine_prog() -> Program {
        prog(vec![
            i(Op::LdCtx, 0, 0, 0),
            i(Op::MulImm, 0, 0, 3),
            i(Op::LdCtx, 1, 0, 1),
            i(Op::SubReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ])
    }

    /// r0 = ctx[0] / ctx[1]  (faults on rows where ctx[1] == 0)
    fn div_prog() -> Program {
        prog(vec![
            i(Op::LdCtx, 0, 0, 0),
            i(Op::LdCtx, 1, 0, 1),
            i(Op::DivReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ])
    }

    fn batch_of(rows: &[[i64; 2]]) -> BatchCtx {
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        BatchCtx::from_rows(2, &refs)
    }

    fn run_all(p: &Program, b: &BatchCtx) -> Vec<Result<i64, VmError>> {
        let plan = BatchPlan::for_program(p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let mut out = Vec::new();
        run_batch(p, plan, b, &mut scratch, &mut map, &mut out);
        out
    }

    #[test]
    fn plan_classifies_programs() {
        let plan = BatchPlan::for_program(&affine_prog());
        assert!(plan.vectorizable && !plan.writes_map && !plan.may_divide);
        let plan = BatchPlan::for_program(&div_prog());
        assert!(plan.vectorizable && !plan.writes_map && plan.may_divide);
        let spill = prog(vec![
            i(Op::MovImm, 0, 0, 7),
            i(Op::StMap, 0, 0, 0),
            i(Op::LdMap, 0, 0, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let plan = BatchPlan::for_program(&spill);
        assert!(!plan.vectorizable && plan.writes_map && !plan.may_divide);
    }

    #[test]
    fn vector_path_matches_scalar_per_row() {
        let p = affine_prog();
        let b = batch_of(&[[10, 4], [0, 0], [-5, 100], [i64::MAX, 1]]);
        let got = run_all(&p, &b);
        let mut map = [0i64; 4];
        for (r, got_row) in got.iter().enumerate() {
            let ctx = [b.get(r, 0), b.get(r, 1)];
            assert_eq!(*got_row, execute_verified(&p, &ctx, &mut map), "row {r}");
        }
    }

    #[test]
    fn fault_rows_match_scalar_and_keep_position() {
        let p = div_prog();
        let b = batch_of(&[[10, 2], [7, 0], [9, 3], [1, 0]]);
        let got = run_all(&p, &b);
        assert_eq!(got[0], Ok(5));
        assert_eq!(got[1], Err(VmError::DivByZero { pc: 2 }));
        assert_eq!(got[2], Ok(3));
        assert_eq!(got[3], Err(VmError::DivByZero { pc: 2 }));
    }

    #[test]
    fn argmin_ties_break_to_lowest_row() {
        let p = affine_prog();
        // scores: 3*x - y → rows 1 and 2 tie at 2.
        let b = batch_of(&[[10, 5], [1, 1], [2, 4], [1, 1]]);
        let plan = BatchPlan::for_program(&p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let got = run_batch_argmin(&p, plan, &b, &mut scratch, &mut map).unwrap();
        assert_eq!(got, 1, "equal minima must pick the lowest row");
    }

    #[test]
    fn argmax_ties_break_to_lowest_row() {
        let p = affine_prog();
        let b = batch_of(&[[1, 1], [5, 0], [5, 0], [0, 0]]);
        let plan = BatchPlan::for_program(&p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let got = run_batch_argmax(&p, plan, &b, &mut scratch, &mut map).unwrap();
        assert_eq!(got, 1);
    }

    #[test]
    fn argmin_aborts_at_lowest_faulting_row() {
        let p = div_prog();
        let b = batch_of(&[[10, 2], [7, 0], [9, 0]]);
        let plan = BatchPlan::for_program(&p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let err = run_batch_argmin(&p, plan, &b, &mut scratch, &mut map).unwrap_err();
        assert_eq!(err, BatchFault { row: 1, fault: VmError::DivByZero { pc: 2 } });
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn argmin_panics_on_empty_batch() {
        let p = affine_prog();
        let b = BatchCtx::new(2);
        let plan = BatchPlan::for_program(&p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let _ = run_batch_argmin(&p, plan, &b, &mut scratch, &mut map);
    }

    #[test]
    fn scratch_reuse_across_shrinking_batches_is_clean() {
        // A faulting wide batch followed by a clean narrow one: stale fault
        // lanes from the first call must not leak into the second.
        let p = div_prog();
        let plan = BatchPlan::for_program(&p);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 4];
        let wide = batch_of(&[[1, 0], [2, 0], [3, 0], [4, 0]]);
        let mut out = Vec::new();
        run_batch(&p, plan, &wide, &mut scratch, &mut map, &mut out);
        assert!(out.iter().all(|r| r.is_err()));
        let narrow = batch_of(&[[8, 2], [6, 3]]);
        assert_eq!(run_batch_argmin(&p, plan, &narrow, &mut scratch, &mut map), Ok(1));
    }

    #[test]
    fn row_fallback_handles_map_traffic() {
        // r0 = ctx[0]; map[0] += r0 per row — order-dependent across rows,
        // so the fallback path must share the map in ascending row order.
        let p = prog(vec![
            i(Op::LdCtx, 0, 0, 0),
            i(Op::LdMap, 1, 0, 0),
            i(Op::AddReg, 1, 0, 0),
            i(Op::StMap, 0, 1, 0),
            i(Op::MovReg, 0, 1, 0),
            i(Op::Exit, 0, 0, 0),
        ]);
        let plan = BatchPlan::for_program(&p);
        assert!(!plan.vectorizable);
        let refs: Vec<&[i64]> = vec![&[5], &[7], &[11]];
        let b = BatchCtx::from_rows(1, &refs);
        let mut scratch = BatchScratch::new();
        let mut map = [0i64; 1];
        let mut out = Vec::new();
        run_batch(&p, plan, &b, &mut scratch, &mut map, &mut out);
        assert_eq!(out, vec![Ok(5), Ok(12), Ok(23)]);
        assert_eq!(map[0], 23);
    }
}
