//! The kbpf virtual machine.
//!
//! Executes a program against a read-only context array and a mutable
//! scratch map, returning `r0`. Semantics match the DSL interpreter
//! ([`policysmith_dsl::eval()`]) exactly — saturating `+ - *`, clamped
//! shifts, faulting division — which is property-tested in
//! `tests/equivalence.rs`.
//!
//! The VM defends itself even against unverified programs (fuel counter,
//! bounds checks, runtime division guard): in the framework only verified
//! programs are ever attached, but the evaluation harness runs candidate
//! code in-process, so the VM must be a safety net rather than trust the
//! caller — the same belt-and-suspenders posture as the kernel.

use crate::isa::{Op, Program, REG_COUNT};
use policysmith_dsl::eval::{div_sat, rem_sat, shl_sat, shr_arith};
use std::fmt;

/// Runtime faults. A verified program can only ever fault with
/// [`VmError::OutOfFuel`] if the caller passes less fuel than instructions
/// — the default budget makes all faults unreachable post-verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Division or remainder by zero at `pc`.
    DivByZero { pc: usize },
    /// Jump or fallthrough left the program text.
    PcOutOfBounds { pc: usize },
    /// Context read out of bounds.
    CtxOutOfBounds { pc: usize, slot: i64 },
    /// Map access out of bounds.
    MapOutOfBounds { pc: usize, slot: i64 },
    /// Instruction budget exhausted (cannot happen for verified, loop-free
    /// programs with the default budget).
    OutOfFuel,
    /// Register number out of range (unverified program).
    BadRegister { pc: usize, reg: u8 },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivByZero { pc } => write!(f, "vm: division by zero at insn {pc}"),
            VmError::PcOutOfBounds { pc } => write!(f, "vm: pc {pc} out of bounds"),
            VmError::CtxOutOfBounds { pc, slot } => {
                write!(f, "vm: ctx[{slot}] out of bounds at insn {pc}")
            }
            VmError::MapOutOfBounds { pc, slot } => {
                write!(f, "vm: map[{slot}] out of bounds at insn {pc}")
            }
            VmError::OutOfFuel => write!(f, "vm: instruction budget exhausted"),
            VmError::BadRegister { pc, reg } => write!(f, "vm: bad register r{reg} at insn {pc}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Execute `prog` and return `r0` at `exit`.
///
/// * `ctx` — read-only feature array (the harness builds it from the
///   connection state each `cong_control` invocation).
/// * `map` — persistent scratch storage; compiled expressions use it only
///   for spills, but hand-written programs may keep state across calls.
pub fn execute(prog: &Program, ctx: &[i64], map: &mut [i64]) -> Result<i64, VmError> {
    execute_with_fuel(prog, ctx, map, prog.len().max(1))
}

/// Execute with an explicit instruction budget.
pub fn execute_with_fuel(
    prog: &Program,
    ctx: &[i64],
    map: &mut [i64],
    mut fuel: usize,
) -> Result<i64, VmError> {
    let mut regs = [0i64; REG_COUNT as usize];
    let mut pc: usize = 0;
    loop {
        if fuel == 0 {
            return Err(VmError::OutOfFuel);
        }
        fuel -= 1;
        let insn = *prog.insns.get(pc).ok_or(VmError::PcOutOfBounds { pc })?;
        if insn.dst >= REG_COUNT {
            return Err(VmError::BadRegister { pc, reg: insn.dst });
        }
        if insn.op.reads_src() && insn.src >= REG_COUNT {
            return Err(VmError::BadRegister { pc, reg: insn.src });
        }
        let d = regs[insn.dst as usize];
        let s = regs[insn.src as usize];
        use Op::*;
        match insn.op {
            MovImm => regs[insn.dst as usize] = insn.imm,
            MovReg => regs[insn.dst as usize] = s,
            AddImm => regs[insn.dst as usize] = d.saturating_add(insn.imm),
            AddReg => regs[insn.dst as usize] = d.saturating_add(s),
            SubImm => regs[insn.dst as usize] = d.saturating_sub(insn.imm),
            SubReg => regs[insn.dst as usize] = d.saturating_sub(s),
            MulImm => regs[insn.dst as usize] = d.saturating_mul(insn.imm),
            MulReg => regs[insn.dst as usize] = d.saturating_mul(s),
            DivImm | DivReg => {
                let b = if insn.op == DivImm { insn.imm } else { s };
                if b == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                regs[insn.dst as usize] = div_sat(d, b);
            }
            RemImm | RemReg => {
                let b = if insn.op == RemImm { insn.imm } else { s };
                if b == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                regs[insn.dst as usize] = rem_sat(d, b);
            }
            Neg => regs[insn.dst as usize] = d.saturating_neg(),
            LshImm => regs[insn.dst as usize] = shl_sat(d, insn.imm),
            LshReg => regs[insn.dst as usize] = shl_sat(d, s),
            RshImm => regs[insn.dst as usize] = shr_arith(d, insn.imm),
            RshReg => regs[insn.dst as usize] = shr_arith(d, s),
            Ja => {
                pc = jump_target(pc, insn.off);
                continue;
            }
            JeqImm | JeqReg | JneImm | JneReg | JltImm | JltReg | JleImm | JleReg | JgtImm
            | JgtReg | JgeImm | JgeReg => {
                let b = if op_is_imm(insn.op) { insn.imm } else { s };
                let cond = match insn.op {
                    JeqImm | JeqReg => d == b,
                    JneImm | JneReg => d != b,
                    JltImm | JltReg => d < b,
                    JleImm | JleReg => d <= b,
                    JgtImm | JgtReg => d > b,
                    JgeImm | JgeReg => d >= b,
                    _ => unreachable!(),
                };
                if cond {
                    pc = jump_target(pc, insn.off);
                    continue;
                }
            }
            LdCtx => {
                let slot = insn.imm;
                let v = usize::try_from(slot)
                    .ok()
                    .and_then(|idx| ctx.get(idx))
                    .ok_or(VmError::CtxOutOfBounds { pc, slot })?;
                regs[insn.dst as usize] = *v;
            }
            LdMap => {
                let slot = insn.imm;
                let v = usize::try_from(slot)
                    .ok()
                    .and_then(|idx| map.get(idx))
                    .ok_or(VmError::MapOutOfBounds { pc, slot })?;
                regs[insn.dst as usize] = *v;
            }
            StMap => {
                let slot = insn.imm;
                let cell = usize::try_from(slot)
                    .ok()
                    .and_then(|idx| map.get_mut(idx))
                    .ok_or(VmError::MapOutOfBounds { pc, slot })?;
                *cell = s;
            }
            Exit => return Ok(regs[0]),
        }
        pc += 1;
    }
}

/// Execute a program that already passed the structural verifier — the
/// compile-once hot path. Compared to [`execute`] this drops the fuel
/// counter (forward-only jumps terminate by construction), the per-insn
/// register validation, and the per-insn fault plumbing; the only
/// remaining error is the runtime division guard, reachable solely for
/// userspace programs the pipeline marked `may_fault`.
///
/// This is a second copy of the ISA semantics and MUST stay in step with
/// [`execute`]: any opcode or semantics change lands in both. The
/// equivalence property suite (`tests/equivalence.rs`) cross-checks the
/// two loops (result *and* scratch-map state) on hundreds of random
/// compiled programs per run, so a divergence fails CI immediately.
///
/// # Panics
/// If the program never passed the verifier, or `ctx`/`map` are smaller
/// than the sizes it was verified against (a caller contract violation,
/// surfaced by the slice bounds checks).
pub fn execute_verified(prog: &Program, ctx: &[i64], map: &mut [i64]) -> Result<i64, VmError> {
    let insns = prog.insns.as_slice();
    // 16-slot register file with masked indexing: the verifier proved every
    // register number < REG_COUNT (= 11), so the mask is semantically a
    // no-op — it exists purely to let the compiler elide bounds checks.
    let mut regs = [0i64; 16];
    let mut pc: usize = 0;
    macro_rules! dst {
        ($insn:expr) => {
            regs[($insn.dst & 15) as usize]
        };
    }
    macro_rules! src {
        ($insn:expr) => {
            regs[($insn.src & 15) as usize]
        };
    }
    macro_rules! jump_if {
        ($insn:expr, $cond:expr) => {
            if $cond {
                pc = pc + 1 + $insn.off as usize;
                continue;
            }
        };
    }
    loop {
        let insn = &insns[pc];
        use Op::*;
        match insn.op {
            MovImm => dst!(insn) = insn.imm,
            MovReg => dst!(insn) = src!(insn),
            AddImm => dst!(insn) = dst!(insn).saturating_add(insn.imm),
            AddReg => dst!(insn) = dst!(insn).saturating_add(src!(insn)),
            SubImm => dst!(insn) = dst!(insn).saturating_sub(insn.imm),
            SubReg => dst!(insn) = dst!(insn).saturating_sub(src!(insn)),
            MulImm => dst!(insn) = dst!(insn).saturating_mul(insn.imm),
            MulReg => dst!(insn) = dst!(insn).saturating_mul(src!(insn)),
            DivImm => {
                if insn.imm == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                dst!(insn) = div_sat(dst!(insn), insn.imm);
            }
            DivReg => {
                let b = src!(insn);
                if b == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                dst!(insn) = div_sat(dst!(insn), b);
            }
            RemImm => {
                if insn.imm == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                dst!(insn) = rem_sat(dst!(insn), insn.imm);
            }
            RemReg => {
                let b = src!(insn);
                if b == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                dst!(insn) = rem_sat(dst!(insn), b);
            }
            Neg => dst!(insn) = dst!(insn).saturating_neg(),
            LshImm => dst!(insn) = shl_sat(dst!(insn), insn.imm),
            LshReg => dst!(insn) = shl_sat(dst!(insn), src!(insn)),
            RshImm => dst!(insn) = shr_arith(dst!(insn), insn.imm),
            RshReg => dst!(insn) = shr_arith(dst!(insn), src!(insn)),
            Ja => {
                pc = pc + 1 + insn.off as usize;
                continue;
            }
            JeqImm => jump_if!(insn, dst!(insn) == insn.imm),
            JeqReg => jump_if!(insn, dst!(insn) == src!(insn)),
            JneImm => jump_if!(insn, dst!(insn) != insn.imm),
            JneReg => jump_if!(insn, dst!(insn) != src!(insn)),
            JltImm => jump_if!(insn, dst!(insn) < insn.imm),
            JltReg => jump_if!(insn, dst!(insn) < src!(insn)),
            JleImm => jump_if!(insn, dst!(insn) <= insn.imm),
            JleReg => jump_if!(insn, dst!(insn) <= src!(insn)),
            JgtImm => jump_if!(insn, dst!(insn) > insn.imm),
            JgtReg => jump_if!(insn, dst!(insn) > src!(insn)),
            JgeImm => jump_if!(insn, dst!(insn) >= insn.imm),
            JgeReg => jump_if!(insn, dst!(insn) >= src!(insn)),
            LdCtx => dst!(insn) = ctx[insn.imm as usize],
            LdMap => dst!(insn) = map[insn.imm as usize],
            StMap => map[insn.imm as usize] = src!(insn),
            Exit => return Ok(regs[0]),
        }
        pc += 1;
    }
}

fn op_is_imm(op: Op) -> bool {
    use Op::*;
    matches!(op, JeqImm | JneImm | JltImm | JleImm | JgtImm | JgeImm)
}

fn jump_target(pc: usize, off: i32) -> usize {
    // Saturate rather than wrap: a bogus target is caught by the pc bounds
    // check on the next iteration.
    (pc as i64 + 1 + off as i64).max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Insn, Op, Program};

    fn i(op: Op, dst: u8, src: u8, imm: i64) -> Insn {
        Insn::new(op, dst, src, imm)
    }

    fn j(op: Op, dst: u8, src: u8, imm: i64, off: i32) -> Insn {
        Insn { op, dst, src, imm, off }
    }

    fn run(insns: Vec<Insn>, ctx: &[i64]) -> Result<i64, VmError> {
        let mut map = [0i64; 8];
        execute(&Program { insns }, ctx, &mut map)
    }

    #[test]
    fn arithmetic_and_exit() {
        let r = run(
            vec![
                i(Op::MovImm, 0, 0, 10),
                i(Op::AddImm, 0, 0, 5),
                i(Op::MulImm, 0, 0, 2),
                i(Op::SubImm, 0, 0, 3),
                i(Op::Exit, 0, 0, 0),
            ],
            &[],
        );
        assert_eq!(r, Ok(27));
    }

    #[test]
    fn saturating_semantics() {
        let r = run(
            vec![i(Op::MovImm, 0, 0, i64::MAX), i(Op::AddImm, 0, 0, 1), i(Op::Exit, 0, 0, 0)],
            &[],
        );
        assert_eq!(r, Ok(i64::MAX));
        let r = run(
            vec![i(Op::MovImm, 0, 0, i64::MIN), i(Op::DivImm, 0, 0, -1), i(Op::Exit, 0, 0, 0)],
            &[],
        );
        assert_eq!(r, Ok(i64::MAX));
    }

    #[test]
    fn division_guard() {
        let r =
            run(vec![i(Op::MovImm, 0, 0, 5), i(Op::DivImm, 0, 0, 0), i(Op::Exit, 0, 0, 0)], &[]);
        assert_eq!(r, Err(VmError::DivByZero { pc: 1 }));
    }

    #[test]
    fn ctx_loads() {
        let r = run(vec![i(Op::LdCtx, 0, 0, 2), i(Op::Exit, 0, 0, 0)], &[10, 20, 30]);
        assert_eq!(r, Ok(30));
        let r = run(vec![i(Op::LdCtx, 0, 0, 9), i(Op::Exit, 0, 0, 0)], &[10]);
        assert_eq!(r, Err(VmError::CtxOutOfBounds { pc: 0, slot: 9 }));
    }

    #[test]
    fn map_roundtrip() {
        let p = Program {
            insns: vec![
                i(Op::MovImm, 1, 0, 77),
                i(Op::StMap, 0, 1, 3),
                i(Op::LdMap, 0, 0, 3),
                i(Op::Exit, 0, 0, 0),
            ],
        };
        let mut map = [0i64; 8];
        assert_eq!(execute(&p, &[], &mut map), Ok(77));
        assert_eq!(map[3], 77);
    }

    #[test]
    fn branches() {
        // r0 = (ctx[0] > 5) ? 100 : 200
        let mk = |c: i64| {
            run(
                vec![
                    i(Op::LdCtx, 1, 0, 0),
                    j(Op::JgtImm, 1, 0, 5, 2),
                    i(Op::MovImm, 0, 0, 200),
                    j(Op::Ja, 0, 0, 0, 1),
                    i(Op::MovImm, 0, 0, 100),
                    i(Op::Exit, 0, 0, 0),
                ],
                &[c],
            )
        };
        assert_eq!(mk(9), Ok(100));
        assert_eq!(mk(3), Ok(200));
        assert_eq!(mk(5), Ok(200));
    }

    #[test]
    fn fuel_exhaustion() {
        let p = Program { insns: vec![i(Op::MovImm, 0, 0, 1), i(Op::Exit, 0, 0, 0)] };
        let mut map = [];
        assert_eq!(execute_with_fuel(&p, &[], &mut map, 1), Err(VmError::OutOfFuel));
        assert_eq!(execute_with_fuel(&p, &[], &mut map, 2), Ok(1));
    }

    #[test]
    fn default_fuel_suffices_for_loop_free() {
        // Straight-line program of length n executes at most n insns.
        let mut insns = vec![i(Op::MovImm, 0, 0, 0)];
        for k in 0..100 {
            insns.push(i(Op::AddImm, 0, 0, k));
        }
        insns.push(i(Op::Exit, 0, 0, 0));
        assert_eq!(run(insns, &[]), Ok((0..100).sum::<i64>()));
    }

    #[test]
    fn pc_escape_caught() {
        let p = Program { insns: vec![j(Op::Ja, 0, 0, 0, 50)] };
        let mut map = [];
        assert!(matches!(
            execute_with_fuel(&p, &[], &mut map, 10),
            Err(VmError::PcOutOfBounds { .. })
        ));
    }

    #[test]
    fn verified_fast_path_agrees_with_the_defensive_interpreter() {
        // a branchy program exercising ALU, jumps, ctx, and map
        let insns = vec![
            i(Op::LdCtx, 1, 0, 0),
            i(Op::MovImm, 2, 0, 10),
            j(Op::JgtReg, 1, 2, 0, 2),
            i(Op::MovImm, 0, 0, 7),
            j(Op::Ja, 0, 0, 0, 3),
            i(Op::MulImm, 1, 0, 3),
            i(Op::StMap, 0, 1, 2),
            i(Op::LdMap, 0, 0, 2),
            i(Op::Exit, 0, 0, 0),
        ];
        let p = Program { insns };
        for c in [0i64, 11, 100] {
            let mut m1 = [0i64; 8];
            let mut m2 = [0i64; 8];
            assert_eq!(execute(&p, &[c], &mut m1), execute_verified(&p, &[c], &mut m2));
            assert_eq!(m1, m2);
        }
    }

    #[test]
    fn verified_fast_path_keeps_the_division_guard() {
        let p = Program {
            insns: vec![
                i(Op::MovImm, 0, 0, 5),
                i(Op::LdCtx, 1, 0, 0),
                i(Op::DivReg, 0, 1, 0),
                i(Op::Exit, 0, 0, 0),
            ],
        };
        let mut map = [0i64; 1];
        assert_eq!(execute_verified(&p, &[0], &mut map), Err(VmError::DivByZero { pc: 2 }));
        assert_eq!(execute_verified(&p, &[2], &mut map), Ok(2));
    }

    #[test]
    fn shifts_match_dsl_semantics() {
        let r =
            run(vec![i(Op::MovImm, 0, 0, 1), i(Op::LshImm, 0, 0, 100), i(Op::Exit, 0, 0, 0)], &[]);
        assert_eq!(r, Ok(i64::MAX)); // clamped to 63, saturating
        let r =
            run(vec![i(Op::MovImm, 0, 0, -16), i(Op::RshImm, 0, 0, 2), i(Op::Exit, 0, 0, 0)], &[]);
        assert_eq!(r, Ok(-4));
    }
}
