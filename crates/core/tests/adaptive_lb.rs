//! §3.1 end-to-end for the load-balancing domain: a policy synthesized
//! for a healthy fleet is caught limping by the drift monitor when a node
//! degrades mid-run, and the [`AdaptiveController`] re-synthesizes a
//! replacement that beats it on the post-shift phase.
//!
//! This is the multi-domain counterpart of the cache-study drift loop in
//! `examples/context_shift.rs`, pinned as a test.

use policysmith_core::library::{AdaptiveController, ContextMonitor, LibraryEntry};
use policysmith_core::search::{run_search, SearchConfig};
use policysmith_core::studies::lb::LbStudy;
use policysmith_gen::{GenConfig, MockLlm};
use policysmith_lbsim::{run_phased, run_phased_windowed, scenario, Dispatcher, ExprDispatcher};

/// Arrivals per monitoring window (the host samples its quality signal at
/// this cadence).
const WINDOW: usize = 500;

/// Stream the onset phases through `dispatcher` window by window, feeding
/// each window's resolved mean slowdown into `monitor`. Returns
/// `(windows in phase 0, first window index that triggered drift)` —
/// window indices are 1-based over the whole run.
fn stream_with_monitor<D: Dispatcher>(
    phases: &[scenario::Scenario],
    dispatcher: &mut D,
    monitor: &mut dyn FnMut(f64) -> bool,
) -> (usize, Option<usize>) {
    let mut pre_windows = 0;
    let mut window_ix = 0;
    let mut drift_at = None;
    run_phased_windowed(phases, dispatcher, WINDOW, &mut |phase, interval| {
        window_ix += 1;
        if phase == 0 {
            pre_windows = window_ix;
        }
        if monitor(interval.resolved_slowdown()) && drift_at.is_none() {
            drift_at = Some(window_ix);
        }
    });
    (pre_windows, drift_at)
}

/// Regression pin for the drift signal itself, independent of the search:
/// a fixed JSQ policy served through the slow-node onset must keep the
/// guardrail silent while the fleet is healthy and trip it shortly after
/// the node degrades.
#[test]
fn slow_node_onset_drift_detection_is_pinned() {
    let phases = scenario::slow_node_onset_phases();
    let expr = policysmith_dsl::parse("server.inflight").unwrap();
    let mut jsq = ExprDispatcher::from_expr("jsq", &expr);
    let mut monitor = ContextMonitor::new(6, 1.35);
    let (pre_windows, drift_at) =
        stream_with_monitor(&phases, &mut jsq, &mut |sample| monitor.observe(sample));

    assert_eq!(pre_windows, phases[0].workload.n / WINDOW);
    let drift = drift_at.expect("the onset must be detected");
    assert!(drift > pre_windows, "no false positive in the healthy phase (fired at {drift})");
    assert!(
        drift <= pre_windows + 12,
        "detection within 12 windows ({} requests) of the onset, got window {drift}",
        12 * WINDOW
    );
}

/// The full adaptation loop: synthesize for the healthy fleet, detect the
/// onset, re-synthesize for the degraded context, and beat the stale
/// policy on the post-shift phase.
#[test]
fn controller_resynthesizes_after_onset_and_beats_the_stale_policy() {
    let phases = scenario::slow_node_onset_phases();
    let (healthy, onset) = (&phases[0], &phases[1]);

    // 1. Synthesize for the healthy regime and deploy it.
    let healthy_study = LbStudy::new(healthy);
    let cfg = SearchConfig { rounds: 4, candidates_per_round: 10, ..SearchConfig::quick() };
    let mut llm = MockLlm::new(GenConfig::lb_defaults(11));
    let deployed = run_search(&healthy_study, &mut llm, &cfg).best;
    assert!(deployed.score > 0.0, "the healthy-context search must beat round-robin");

    // The library's only entry will be the stale policy itself; requiring
    // any reuse to beat what that policy already delivers on the onset
    // context (by 2% absolute) forces the re-synthesis arm.
    let onset_study = LbStudy::new(onset);
    let expr = policysmith_dsl::parse(&deployed.source).unwrap();
    let mut stale_probe = ExprDispatcher::from_expr("stale", &expr);
    let stale_improvement = onset_study.improvement(&mut stale_probe);
    let mut ctrl = AdaptiveController::new(ContextMonitor::new(6, 1.35), stale_improvement + 0.02);
    ctrl.deploy(LibraryEntry {
        context: healthy.name.clone(),
        source: deployed.source.clone(),
        score: deployed.score,
    });

    // 2. Serve the shift with the deployed policy; the guardrail must fire
    //    only after the node degrades.
    let mut stale_host = ExprDispatcher::from_expr("deployed", &expr);
    let (pre_windows, drift_at) =
        stream_with_monitor(&phases, &mut stale_host, &mut |s| ctrl.observe(s));
    let drift = drift_at.expect("drift must be detected after the onset");
    assert!(drift > pre_windows, "guardrail fired in the healthy regime (window {drift})");

    // 3. Offline re-synthesis for the drifted context.
    let resynth_cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::quick() };
    let mut llm2 = MockLlm::new(GenConfig::lb_defaults(12));
    let adaptation = ctrl.adapt(&onset.name, &onset_study, &mut llm2, &resynth_cfg);

    assert!(adaptation.resynthesized(), "the stale policy cannot clear its own score + 2%");
    assert_eq!(ctrl.library().len(), 2, "the library grew by the onset policy");
    assert_eq!(ctrl.deployed().unwrap().context, onset.name);
    assert!(
        adaptation.entry().score > stale_improvement,
        "re-synthesized improvement {:.4} must beat the stale policy's {:.4} on the onset context",
        adaptation.entry().score,
        stale_improvement
    );

    // 4. The decisive metric: replay the whole phased run with both
    //    policies and compare the post-shift phase.
    let mut stale_replay = ExprDispatcher::from_expr("stale", &expr);
    let adapted_expr = policysmith_dsl::parse(&adaptation.entry().source).unwrap();
    let mut adapted_replay = ExprDispatcher::from_expr("adapted", &adapted_expr);
    let stale_run = run_phased(&phases, &mut stale_replay);
    let adapted_run = run_phased(&phases, &mut adapted_replay);
    assert!(
        adapted_run.phase_slowdown(1) < stale_run.phase_slowdown(1),
        "adapted post-shift slowdown {:.3} must beat stale {:.3}",
        adapted_run.phase_slowdown(1),
        stale_run.phase_slowdown(1)
    );
}
