//! # policysmith-core — the PolicySmith framework (§3 of the paper)
//!
//! The paper's primary contribution: policy design re-imagined as an
//! automated search problem. The user supplies a **Template** (what the
//! heuristic must implement + constraints), a **Checker** (is a candidate
//! within spec?) and an **Evaluator** (how well does it perform in this
//! context?); an LLM **Generator** proposes candidates; an evolutionary
//! loop feeds the best back as exemplars (§4.2.1: 25 candidates × 20
//! rounds, top-2 feedback).
//!
//! * [`search`] — the generic search loop, population management, round
//!   statistics and the cost ledger (§4.2.6);
//!
//! Every study's Checker is now the same compile-once pipeline
//! (parse → mode-check → kbpf lowering → **verify**), so every Evaluator
//! executes verified bytecode rather than walking the AST:
//!
//! * [`studies::cache`] — the web-caching instantiation (§4): evaluator =
//!   miss-ratio improvement over FIFO on one trace at 10%-of-footprint
//!   capacity;
//! * [`studies::cc`] — the kernel instantiation (§5): verification is
//!   strict (the verifier is the Checker); evaluator = emulated
//!   12 Mbps / 20 ms link;
//! * [`studies::lb`] — the load-balancing instantiation (third workload,
//!   beyond the paper): evaluator = mean-slowdown improvement over
//!   round-robin on a dispatch-tier scenario — proof that a new controller
//!   slots in behind the same [`Study`] boundary unchanged;
//! * [`library`] — the §3.1 context layer: a library of synthesized
//!   heuristics, a guardrail-style drift monitor, and the
//!   [`AdaptiveController`] closing the drift → library → re-synthesis
//!   loop generically over any [`Study`].
//!
//! ```no_run
//! use policysmith_core::search::{run_search, SearchConfig};
//! use policysmith_core::studies::cache::CacheStudy;
//! use policysmith_gen::{GenConfig, MockLlm};
//!
//! let trace = policysmith_traces::cloudphysics().trace(89, 100_000);
//! let study = CacheStudy::new(&trace);
//! let mut llm = MockLlm::new(GenConfig::cache_defaults(42));
//! let outcome = run_search(&study, &mut llm, &SearchConfig::paper_cache());
//! println!("best: {}  (+{:.1}% over FIFO)", outcome.best.source, outcome.best.score * 100.0);
//! ```

pub mod library;
pub mod search;
pub mod studies;

pub use library::{
    run_search_with_retry, Adaptation, AdaptiveController, ContextMonitor, GiveUp,
    HeuristicLibrary, LibraryEntry, RetriedSearch, RetryPolicy, SearchAttempt, SearchNeeded,
};
pub use search::{
    run_search, try_run_search, CostLedger, RoundStats, Scored, SearchConfig, SearchError,
    SearchOutcome, Study,
};
