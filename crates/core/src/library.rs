//! The §3.1 context layer: a library of synthesized heuristics, a
//! guardrail-style drift monitor, and the [`AdaptiveController`] that
//! closes the loop for *any* study.
//!
//! The paper explicitly scopes context *detection* out ("this paper does
//! not focus on designing context-detection or runtime-adaptation systems,
//! and rather assumes such triggers are available") — this module provides
//! the minimal such trigger so the end-to-end loop (§3.1: drift → offline
//! re-synthesis → grow the library → adaptation picks from it) can be
//! demonstrated and tested, not a research contribution.
//!
//! The three pieces compose bottom-up:
//!
//! * [`HeuristicLibrary`] — the growing store of synthesized policies with
//!   provenance ([`LibraryEntry`]);
//! * [`ContextMonitor`] — the drift trigger: a rolling mean over a
//!   streaming quality signal against a deployment-time baseline;
//! * [`AdaptiveController`] — monitor + library + re-synthesis fallback,
//!   generic over [`Study`]: the same controller hosts the cache, lb, and
//!   cc workloads, because "score a stored entry in the new context" is
//!   just `check` + `evaluate` and "no stored policy fits" is just
//!   [`run_search`].

use crate::search::{run_search, try_run_search, Scored, SearchConfig, SearchOutcome, Study};
use policysmith_gen::Generator;
use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// One synthesized heuristic with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntry {
    /// Context identifier (e.g. `cloudphysics/w89`).
    pub context: String,
    /// Heuristic source.
    pub source: String,
    /// Score in its home context (improvement over FIFO).
    pub score: f64,
}

/// A growing library of PolicySmith-generated heuristics (§3.1: "over
/// time, this enables building a library … providing better options for an
/// adaptation system to choose from").
///
/// Entries can be **poisoned**: a policy that faulted at runtime (tripped
/// a serving host's fault latch, or was rejected by the publication guard
/// for runtime-faulting) is quarantined by *source text*, so the verdict
/// survives the entry being re-added under a different context or score.
/// Poisoned sources are invisible to [`best_for`](Self::best_for) — and
/// therefore to `try_reuse` — until explicitly un-poisoned.
#[derive(Debug, Clone, Default)]
pub struct HeuristicLibrary {
    entries: Vec<LibraryEntry>,
    /// Quarantined sources, keyed by source text (not by entry index).
    poisoned: BTreeSet<String>,
}

impl HeuristicLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a synthesized heuristic.
    pub fn add(&mut self, entry: LibraryEntry) {
        self.entries.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[LibraryEntry] {
        &self.entries
    }

    /// Number of stored heuristics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the library empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Quarantine a source: every entry with this exact source text is
    /// skipped by [`best_for`](Self::best_for) until
    /// [`unpoison`](Self::unpoison)ed, even if re-added later. Returns
    /// `true` if the source was not already poisoned.
    pub fn poison(&mut self, source: &str) -> bool {
        self.poisoned.insert(source.to_string())
    }

    /// Lift a quarantine (the only way a poisoned source comes back).
    /// Returns `true` if the source was poisoned.
    pub fn unpoison(&mut self, source: &str) -> bool {
        self.poisoned.remove(source)
    }

    /// Is this source quarantined?
    pub fn is_poisoned(&self, source: &str) -> bool {
        self.poisoned.contains(source)
    }

    /// Every quarantined source, in sorted order.
    pub fn poisoned(&self) -> impl Iterator<Item = &str> {
        self.poisoned.iter().map(|s| s.as_str())
    }

    /// Pick the best heuristic for a context by *evaluating* every stored
    /// candidate with the supplied scorer (the oracle-adaptation model of
    /// §4.2.4) and returning the winner together with its score.
    ///
    /// Returns `None` on an empty library, or when every entry is
    /// [poisoned](Self::poison) — quarantined sources are never scored.
    /// Scorers returning `NaN` (a degenerate improvement ratio, say)
    /// neither panic nor win.
    ///
    /// ```
    /// use policysmith_core::library::{HeuristicLibrary, LibraryEntry};
    ///
    /// let mut lib = HeuristicLibrary::new();
    /// lib.add(LibraryEntry { context: "w10".into(), source: "obj.count".into(), score: 0.31 });
    /// lib.add(LibraryEntry { context: "w55".into(), source: "obj.last_access".into(), score: 0.24 });
    ///
    /// // the adaptation system re-scores every entry in the *current*
    /// // context — here, recency wins even though frequency scored
    /// // higher at home
    /// let (best, score) = lib
    ///     .best_for(|e| if e.source.contains("last_access") { 0.4 } else { 0.1 })
    ///     .unwrap();
    /// assert_eq!(best.context, "w55");
    /// assert_eq!(score, 0.4);
    /// ```
    pub fn best_for<F: FnMut(&LibraryEntry) -> f64>(
        &self,
        mut scorer: F,
    ) -> Option<(&LibraryEntry, f64)> {
        self.entries
            .iter()
            .filter(|e| !self.poisoned.contains(&e.source))
            .map(|e| {
                let s = scorer(e);
                (e, s)
            })
            .max_by(|a, b| {
                // NaN-safe: a scorer returning NaN (e.g. a degenerate
                // improvement ratio) must neither panic nor win.
                let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
                key(a.1).total_cmp(&key(b.1))
            })
    }
}

/// A guardrail-style drift detector over a streaming quality signal (miss
/// ratio, loss rate, …): triggers when the rolling mean degrades past
/// `tolerance ×` the baseline established at deployment (§3.1.2's
/// "implicit context shifts").
#[derive(Debug, Clone)]
pub struct ContextMonitor {
    window: VecDeque<f64>,
    window_size: usize,
    baseline: Option<f64>,
    tolerance: f64,
}

impl ContextMonitor {
    /// Monitor with a rolling window and a degradation tolerance (e.g.
    /// `1.2` = trigger at 20% worse than baseline).
    pub fn new(window_size: usize, tolerance: f64) -> Self {
        assert!(window_size > 0 && tolerance > 1.0);
        ContextMonitor { window: VecDeque::new(), window_size, baseline: None, tolerance }
    }

    /// Feed one sample of the quality signal (lower = better, e.g. miss
    /// ratio). Returns `true` when drift is detected — the caller should
    /// trigger re-synthesis (and this monitor re-baselines: the next full
    /// window after a trigger defines the new regime's baseline).
    ///
    /// The first full window establishes the deployment baseline and never
    /// triggers; before the window fills, nothing triggers.
    ///
    /// Degenerate samples are handled, not propagated: a `NaN` sample (a
    /// 0/0 quality ratio over an empty window, say) carries no evidence
    /// either way and is **ignored** — it neither fills the window nor
    /// poisons the rolling mean. `+∞` samples (a stalled window scored as
    /// an outage) *do* participate: they trigger against any established
    /// baseline, but a window whose mean is non-finite can never *become*
    /// the baseline — the monitor waits for the signal to return to finite
    /// values before (re-)baselining.
    ///
    /// ```
    /// use policysmith_core::library::ContextMonitor;
    ///
    /// // 3-sample rolling window, trigger at 20% over baseline
    /// let mut monitor = ContextMonitor::new(3, 1.2);
    /// for _ in 0..3 {
    ///     assert!(!monitor.observe(0.30)); // establishes baseline 0.30
    /// }
    /// assert_eq!(monitor.baseline(), Some(0.30));
    ///
    /// // regime shift: the rolling mean climbs past 0.36 within a window
    /// let fired: Vec<bool> = (0..3).map(|_| monitor.observe(0.45)).collect();
    /// assert_eq!(fired.iter().filter(|&&f| f).count(), 1, "exactly one trigger");
    /// assert_eq!(monitor.baseline(), None, "re-baselining on the new regime");
    /// ```
    pub fn observe(&mut self, sample: f64) -> bool {
        if sample.is_nan() {
            return false;
        }
        self.window.push_back(sample);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
        if self.window.len() < self.window_size {
            return false;
        }
        let mean = self.window.iter().sum::<f64>() / self.window.len() as f64;
        match self.baseline {
            None => {
                // first full window with a *finite* mean defines the
                // deployment baseline (an ∞ sample still in the window
                // cannot define a regime to degrade from)
                if mean.is_finite() {
                    self.baseline = Some(mean);
                }
                false
            }
            Some(base) => {
                if mean > base * self.tolerance {
                    // drop the baseline: the next full window (i.e. the new
                    // regime, not the mixed transition window) redefines it
                    self.baseline = None;
                    self.window.clear();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current baseline, if established.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }
}

/// How the controller answered one drift trigger (§3.1: adaptation either
/// picks from the library or grows it).
#[derive(Debug, Clone, PartialEq)]
pub enum Adaptation {
    /// A stored heuristic was deployed: either it cleared the reuse
    /// threshold outright (no search ran), or a fresh search ran but
    /// failed to beat it in the drifted context (the search winner still
    /// joins the library; the controller never deploys a policy worse
    /// than the best one it already knows).
    FromLibrary {
        /// The reused entry (its `score` is still the home-context score).
        entry: LibraryEntry,
        /// The entry's score re-evaluated in the drifted context.
        score: f64,
    },
    /// No stored policy fit — a fresh [`run_search`] ran offline, its
    /// winner out-scored every stored policy in the drifted context, and
    /// it was deployed and added to the library.
    Resynthesized {
        /// The new entry: context = the drifted context's name, score =
        /// the search winner's score there.
        entry: LibraryEntry,
    },
}

impl Adaptation {
    /// The entry now deployed, whichever way it was obtained.
    pub fn entry(&self) -> &LibraryEntry {
        match self {
            Adaptation::FromLibrary { entry, .. } => entry,
            Adaptation::Resynthesized { entry } => entry,
        }
    }

    /// Did this adaptation run a fresh search?
    pub fn resynthesized(&self) -> bool {
        matches!(self, Adaptation::Resynthesized { .. })
    }
}

/// The ticket half of the controller's non-blocking API: returned by
/// [`AdaptiveController::try_reuse`] when no stored policy clears the
/// reuse threshold. It records the best stored entry re-scored in the
/// drifted context, so [`AdaptiveController::finish_search`] can later
/// decide between the externally-run search winner and what the library
/// already held — without re-scoring anything.
#[derive(Debug)]
pub struct SearchNeeded {
    /// Best stored entry and its score in the drifted context (`None` on
    /// an empty library, or when nothing compiled under the study).
    best_stored: Option<(LibraryEntry, f64)>,
}

impl SearchNeeded {
    /// The best stored entry re-scored in the drifted context, if any.
    pub fn best_stored(&self) -> Option<(&LibraryEntry, f64)> {
        self.best_stored.as_ref().map(|(e, s)| (e, *s))
    }
}

/// The §3.1 loop as a reusable component: monitor a rolling quality
/// signal, detect drift, consult the [`HeuristicLibrary`], and fall back
/// to a fresh [`run_search`] when no stored policy fits the new context.
///
/// The controller is generic over [`Study`], so one implementation hosts
/// every workload — caching, load balancing, congestion control. Scoring
/// a stored entry in the drifted context is `study.check` +
/// `study.evaluate` (entries that do not even compile under the study's
/// template — e.g. a cache heuristic consulted for an lb context in a
/// shared library — score `-∞` and can never be picked); "no stored
/// policy fits" means the best such score is below the controller's reuse
/// threshold.
///
/// The host's side of the contract is a loop of:
///
/// 1. serve traffic with [`deployed`](Self::deployed), sampling the
///    quality signal (miss ratio, windowed mean slowdown, loss rate —
///    lower is better) into [`observe`](Self::observe);
/// 2. when `observe` returns `true`, build a [`Study`] for the *current*
///    context and call [`adapt`](Self::adapt);
/// 3. swap the returned entry in and keep serving.
///
/// Hosts that must not stop the world (an online serving runtime) use the
/// non-blocking split of step 2 instead: [`try_reuse`](Self::try_reuse)
/// answers immediately when a stored policy fits, and hands back a
/// [`SearchNeeded`] ticket otherwise; the host runs [`run_search`] on its
/// own background thread while decisions keep flowing, then folds the
/// winner in with [`finish_search`](Self::finish_search). `adapt` is
/// exactly `try_reuse` + `run_search` + `finish_search` in one blocking
/// call.
#[derive(Debug)]
pub struct AdaptiveController {
    monitor: ContextMonitor,
    library: HeuristicLibrary,
    min_reuse_score: f64,
    deployed: Option<LibraryEntry>,
    adaptations: Vec<Adaptation>,
}

impl AdaptiveController {
    /// A controller with the given drift trigger and reuse threshold: on
    /// drift, a stored policy is swapped in only if it scores at least
    /// `min_reuse_score` when re-evaluated in the drifted context
    /// (scores are study improvements, e.g. over FIFO or round-robin);
    /// anything less falls through to re-synthesis.
    pub fn new(monitor: ContextMonitor, min_reuse_score: f64) -> AdaptiveController {
        AdaptiveController {
            monitor,
            library: HeuristicLibrary::new(),
            min_reuse_score,
            deployed: None,
            adaptations: Vec::new(),
        }
    }

    /// Seed the controller with an existing library (e.g. entries carried
    /// over from earlier deployments).
    pub fn with_library(mut self, library: HeuristicLibrary) -> AdaptiveController {
        self.library = library;
        self
    }

    /// Deploy a policy: record it as live and add it to the library.
    pub fn deploy(&mut self, entry: LibraryEntry) {
        self.library.add(entry.clone());
        self.deployed = Some(entry);
    }

    /// The live policy, if one was deployed.
    pub fn deployed(&self) -> Option<&LibraryEntry> {
        self.deployed.as_ref()
    }

    /// The heuristic library grown so far.
    pub fn library(&self) -> &HeuristicLibrary {
        &self.library
    }

    /// Quarantine a source in the library (see
    /// [`HeuristicLibrary::poison`]): a runtime-faulting policy must never
    /// be picked by `try_reuse`/`best_for` again. Returns `true` if the
    /// source was not already poisoned.
    pub fn poison(&mut self, source: &str) -> bool {
        self.library.poison(source)
    }

    /// The drift monitor (for baseline inspection).
    pub fn monitor(&self) -> &ContextMonitor {
        &self.monitor
    }

    /// Every adaptation performed, in order.
    pub fn adaptations(&self) -> &[Adaptation] {
        &self.adaptations
    }

    /// Feed one sample of the deployed policy's quality signal (lower =
    /// better). Returns `true` on drift — the cue to call
    /// [`adapt`](Self::adapt) with a study of the current context.
    pub fn observe(&mut self, sample: f64) -> bool {
        self.monitor.observe(sample)
    }

    /// Answer a drift trigger for the context described by `study`.
    ///
    /// Every stored entry is re-scored in the new context (the §4.2.4
    /// oracle-adaptation model: `check`, then `evaluate`; compile failures
    /// score `-∞`). If the best stored score reaches the reuse threshold,
    /// that entry is re-deployed; otherwise [`run_search`] synthesizes a
    /// fresh policy offline — the §3.1 "disposable heuristics" move — and
    /// the library grows by its winner. The winner is deployed only if it
    /// out-scores the best stored policy in this context; a search that
    /// underperforms the library (small budgets can) still grows it, but
    /// the better stored policy is what goes live.
    pub fn adapt<S: Study>(
        &mut self,
        context: &str,
        study: &S,
        generator: &mut dyn Generator,
        cfg: &SearchConfig,
    ) -> Adaptation {
        match self.try_reuse(study) {
            Ok(adaptation) => adaptation,
            Err(needed) => {
                let outcome = run_search(study, generator, cfg);
                self.finish_search(context, needed, outcome.best)
            }
        }
    }

    /// The poll half of the non-blocking API: re-score every stored entry
    /// in the context described by `study` and, if the best one clears the
    /// reuse threshold, deploy it and return the finished [`Adaptation`].
    /// Otherwise return a [`SearchNeeded`] ticket — the caller runs the
    /// search itself (on whatever thread, budget, or executor it likes;
    /// a serving host keeps answering decision requests meanwhile) and
    /// completes the adaptation with [`finish_search`](Self::finish_search).
    ///
    /// "Non-blocking" here means *no generation search runs inside the
    /// controller*; re-scoring the library still costs one `check` +
    /// `evaluate` per stored entry.
    pub fn try_reuse<S: Study>(&mut self, study: &S) -> Result<Adaptation, SearchNeeded> {
        let best = self
            .library
            .best_for(|e| match study.check(&e.source) {
                Ok(artifact) => study.evaluate(&artifact),
                Err(_) => f64::NEG_INFINITY,
            })
            .map(|(entry, score)| (entry.clone(), score));

        match best {
            Some((entry, score)) if score >= self.min_reuse_score => {
                self.deployed = Some(entry.clone());
                let adaptation = Adaptation::FromLibrary { entry, score };
                self.adaptations.push(adaptation.clone());
                Ok(adaptation)
            }
            best_stored => Err(SearchNeeded { best_stored }),
        }
    }

    /// Complete an adaptation begun by [`try_reuse`](Self::try_reuse):
    /// fold the externally-run search `winner` into the library and deploy
    /// the better of it and the ticket's best stored entry (a small search
    /// budget can lose to a stored policy that merely missed the reuse
    /// bar — the controller never deploys a policy worse than the best one
    /// it already knows). `winner.score` must be the winner's score in the
    /// drifted context — which is what [`run_search`] on the drifted
    /// study's `best` reports.
    pub fn finish_search(
        &mut self,
        context: &str,
        needed: SearchNeeded,
        winner: Scored,
    ) -> Adaptation {
        let entry = LibraryEntry {
            context: context.to_string(),
            source: winner.source,
            score: winner.score,
        };
        self.library.add(entry.clone());
        let adaptation = match needed.best_stored {
            // a stored entry poisoned after the ticket was issued (a
            // quarantine raced the search) must not win the comparison
            Some((stored, score))
                if score >= entry.score && !self.library.is_poisoned(&stored.source) =>
            {
                self.deployed = Some(stored.clone());
                Adaptation::FromLibrary { entry: stored, score }
            }
            _ => {
                self.deployed = Some(entry.clone());
                Adaptation::Resynthesized { entry }
            }
        };
        self.adaptations.push(adaptation.clone());
        adaptation
    }

    /// Abandon an adaptation begun by [`try_reuse`](Self::try_reuse)
    /// whose search could not be completed (generator outage past the
    /// retry budget): instead of blocking adaptation forever, deploy the
    /// ticket's best stored entry — the least-bad policy the library
    /// already holds — provided it scored a real number in the drifted
    /// context and has not been poisoned since. Returns `None` when
    /// nothing stored is deployable; the incumbent simply stays live.
    pub fn abandon_search(&mut self, needed: SearchNeeded) -> Option<Adaptation> {
        let (entry, score) = needed.best_stored?;
        if !score.is_finite() || self.library.is_poisoned(&entry.source) {
            return None;
        }
        self.deployed = Some(entry.clone());
        let adaptation = Adaptation::FromLibrary { entry, score };
        self.adaptations.push(adaptation.clone());
        Some(adaptation)
    }
}

/// Bounded exponential backoff + a wall-clock watchdog for background
/// re-synthesis: how many times a failed search attempt is retried, how
/// long to wait between attempts, and the deadline past which the
/// controller gives up and falls back to the library
/// ([`AdaptiveController::abandon_search`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before retry *k* is `base << k`, capped below.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap_ms: u64,
    /// Watchdog: once this much wall-clock has elapsed since the first
    /// attempt started, no further retries are scheduled.
    pub deadline_ms: u64,
}

impl RetryPolicy {
    /// The serving runtime's default: a handful of quick retries, give up
    /// well before the drift window loses its meaning.
    pub fn serving() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            deadline_ms: 20_000,
        }
    }

    /// One attempt, no retries — [`run_search_with_retry`] behaves like a
    /// fallible [`run_search`].
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            deadline_ms: u64::MAX,
        }
    }

    /// Backoff sleep before the retry following failed attempt `attempt`
    /// (0-based).
    fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.backoff_base_ms.saturating_mul(factor).min(self.backoff_cap_ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::serving()
    }
}

/// One failed search attempt inside [`run_search_with_retry`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchAttempt {
    /// 0-based attempt index.
    pub attempt: u32,
    /// The rendered [`crate::search::SearchError`].
    pub error: String,
    /// Backoff slept after this failure (0 for the final attempt).
    pub backoff_ms: u64,
    /// How long the attempt itself ran.
    pub elapsed_ms: u64,
}

/// Why [`run_search_with_retry`] stopped without an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUp {
    /// Every allowed attempt failed.
    AttemptsExhausted,
    /// The watchdog deadline fired before the attempts ran out.
    DeadlineExceeded,
}

impl std::fmt::Display for GiveUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GiveUp::AttemptsExhausted => write!(f, "retry attempts exhausted"),
            GiveUp::DeadlineExceeded => write!(f, "watchdog deadline exceeded"),
        }
    }
}

/// The result of a retried search: either an outcome (with the failures
/// that preceded it) or a give-up verdict.
#[derive(Debug)]
pub struct RetriedSearch {
    /// The successful attempt's outcome, if any attempt succeeded.
    pub outcome: Option<SearchOutcome>,
    /// Every failed attempt, in order.
    pub failures: Vec<SearchAttempt>,
    /// Why the search gave up (`None` iff `outcome` is `Some`).
    pub gave_up: Option<GiveUp>,
}

/// Run [`try_run_search`] under a [`RetryPolicy`]: failed attempts are
/// retried with bounded exponential backoff until one succeeds, the
/// attempt budget runs out, or the watchdog deadline fires. A failed
/// attempt is abandoned whole — the generator's stream position advances,
/// so a flaky backend gets genuinely fresh randomness on retry.
pub fn run_search_with_retry<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
    retry: &RetryPolicy,
) -> RetriedSearch {
    let started = Instant::now();
    let max_attempts = retry.max_attempts.max(1);
    let mut failures = Vec::new();
    for attempt in 0..max_attempts {
        let t0 = Instant::now();
        match try_run_search(study, generator, cfg) {
            Ok(outcome) => {
                return RetriedSearch { outcome: Some(outcome), failures, gave_up: None }
            }
            Err(e) => {
                let last = attempt + 1 == max_attempts;
                let backoff_ms = if last { 0 } else { retry.backoff_ms(attempt) };
                policysmith_obs::emit(policysmith_obs::TraceKind::RetryAttempt {
                    attempt: attempt + 1,
                    error: e.to_string(),
                    backoff_ms,
                });
                failures.push(SearchAttempt {
                    attempt,
                    error: e.to_string(),
                    backoff_ms,
                    elapsed_ms: t0.elapsed().as_millis() as u64,
                });
                if last {
                    break;
                }
                // the watchdog bounds total wall-clock: if the next sleep
                // would land past the deadline, give up now
                let elapsed_ms = started.elapsed().as_millis() as u64;
                if elapsed_ms.saturating_add(backoff_ms) >= retry.deadline_ms {
                    policysmith_obs::emit(policysmith_obs::TraceKind::RetryGaveUp {
                        attempts: attempt + 1,
                        why: GiveUp::DeadlineExceeded.to_string(),
                    });
                    return RetriedSearch {
                        outcome: None,
                        failures,
                        gave_up: Some(GiveUp::DeadlineExceeded),
                    };
                }
                if backoff_ms > 0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                }
            }
        }
    }
    policysmith_obs::emit(policysmith_obs::TraceKind::RetryGaveUp {
        attempts: max_attempts,
        why: GiveUp::AttemptsExhausted.to_string(),
    });
    RetriedSearch { outcome: None, failures, gave_up: Some(GiveUp::AttemptsExhausted) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_best_for_picks_max() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "a".into(), source: "obj.count".into(), score: 0.1 });
        lib.add(LibraryEntry { context: "b".into(), source: "obj.last_access".into(), score: 0.2 });
        let (best, score) = lib.best_for(|e| if e.context == "a" { 0.9 } else { 0.3 }).unwrap();
        assert_eq!(best.context, "a");
        assert!((score - 0.9).abs() < 1e-12);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn monitor_triggers_on_sustained_degradation() {
        let mut m = ContextMonitor::new(10, 1.2);
        // stable regime at 0.30 establishes the baseline
        let mut triggered = false;
        for _ in 0..20 {
            triggered |= m.observe(0.30);
        }
        assert!(!triggered, "no drift in a stable regime");
        assert!(m.baseline().is_some());
        // regime shift to 0.45 (+50%) must trigger within a window or two
        let mut fired = 0;
        for _ in 0..20 {
            if m.observe(0.45) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "exactly one trigger, then re-baseline");
        // the new regime is now the baseline: no more triggers
        let mut more = 0;
        for _ in 0..20 {
            if m.observe(0.45) {
                more += 1;
            }
        }
        assert_eq!(more, 0);
    }

    #[test]
    fn monitor_tolerates_noise_within_tolerance() {
        let mut m = ContextMonitor::new(8, 1.3);
        let mut fired = false;
        for i in 0..100 {
            let noise = if i % 2 == 0 { 0.02 } else { -0.02 };
            fired |= m.observe(0.30 + noise);
        }
        assert!(!fired, "±7% noise must not trigger a 30% guardrail");
    }

    #[test]
    #[should_panic]
    fn monitor_rejects_bad_params() {
        ContextMonitor::new(0, 1.5);
    }

    #[test]
    fn empty_library_has_no_best() {
        let lib = HeuristicLibrary::new();
        assert!(lib.is_empty());
        assert_eq!(lib.len(), 0);
        assert!(lib.best_for(|_| 1.0).is_none());
    }

    #[test]
    fn single_entry_library_always_wins() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "only".into(), source: "obj.count".into(), score: 0.2 });
        let (best, score) = lib.best_for(|e| e.score * 2.0).unwrap();
        assert_eq!(best.context, "only");
        assert!((score - 0.4).abs() < 1e-12);
        assert!(!lib.is_empty());
    }

    #[test]
    fn best_for_survives_nan_scores() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "a".into(), source: "obj.count".into(), score: 0.1 });
        lib.add(LibraryEntry { context: "b".into(), source: "now".into(), score: 0.2 });
        // a NaN-scoring entry must neither panic the selection nor win it
        let (best, _) = lib.best_for(|e| if e.context == "a" { f64::NAN } else { 0.5 }).unwrap();
        assert_eq!(best.context, "b");
    }

    #[test]
    fn monitor_with_single_sample_window() {
        // window_size = 1: every sample is a full window. The first sample
        // sets the baseline; the next degrading sample triggers at once.
        let mut m = ContextMonitor::new(1, 1.2);
        assert!(!m.observe(0.30), "first sample only establishes the baseline");
        assert_eq!(m.baseline(), Some(0.30));
        assert!(!m.observe(0.35), "within tolerance");
        assert!(m.observe(0.45), "20% guardrail exceeded");
        // re-baselining: the next sample defines the new regime
        assert_eq!(m.baseline(), None);
        assert!(!m.observe(0.45));
        assert_eq!(m.baseline(), Some(0.45));
    }

    #[test]
    fn monitor_before_full_window_never_triggers() {
        let mut m = ContextMonitor::new(10, 1.2);
        for _ in 0..9 {
            assert!(!m.observe(10.0), "no baseline, no trigger");
        }
        assert_eq!(m.baseline(), None, "window not yet full");
        assert!(!m.observe(10.0));
        assert_eq!(m.baseline(), Some(10.0), "10th sample completes the window");
    }

    #[test]
    fn monitor_ignores_nan_samples() {
        let mut m = ContextMonitor::new(3, 1.5);
        for _ in 0..3 {
            assert!(!m.observe(0.30));
        }
        assert_eq!(m.baseline(), Some(0.30));
        // NaN carries no evidence: ignored entirely, window untouched
        for _ in 0..10 {
            assert!(!m.observe(f64::NAN));
        }
        assert_eq!(m.baseline(), Some(0.30), "NaN must not disturb the baseline");
        // the window still holds the three 0.30 samples; the second
        // degraded sample pushes the rolling mean past the 50% guardrail
        assert!(!m.observe(0.60), "mean 0.40 is inside the 0.45 guardrail");
        assert!(m.observe(0.60), "real degradation still fires after NaNs");
    }

    #[test]
    fn monitor_treats_infinite_samples_as_outage_but_never_as_baseline() {
        let mut m = ContextMonitor::new(2, 1.5);
        // an ∞ sample in the first window: no baseline can be established
        // until it rolls out
        assert!(!m.observe(f64::INFINITY));
        assert!(!m.observe(0.30));
        assert_eq!(m.baseline(), None, "a non-finite mean must not become the baseline");
        assert!(!m.observe(0.30), "finite window establishes the baseline");
        assert_eq!(m.baseline(), Some(0.30));
        // with a baseline in place, an ∞ sample (stalled window scored as
        // an outage) triggers immediately
        assert!(m.observe(f64::INFINITY));
        assert_eq!(m.baseline(), None, "trigger re-baselines");
        // and the re-established baseline again waits out the infinity
        assert!(!m.observe(f64::INFINITY));
        assert!(!m.observe(0.45));
        assert_eq!(m.baseline(), None);
        assert!(!m.observe(0.45));
        assert_eq!(m.baseline(), Some(0.45));
    }

    #[test]
    fn monitor_tolerance_exactly_at_the_boundary_does_not_trigger() {
        // the guardrail is strict: mean must EXCEED base × tolerance
        let mut m = ContextMonitor::new(1, 1.2);
        assert!(!m.observe(0.50)); // baseline 0.50, threshold 0.60
        assert!(!m.observe(0.60), "exactly at the boundary must not fire");
        assert_eq!(m.baseline(), Some(0.50), "boundary sample must not re-baseline");
        assert!(m.observe(0.60 + 1e-9), "just past the boundary fires");
    }

    #[test]
    fn monitor_reestablishes_baseline_from_the_new_regime_after_reset() {
        let mut m = ContextMonitor::new(4, 1.25);
        for _ in 0..4 {
            m.observe(0.20);
        }
        assert_eq!(m.baseline(), Some(0.20));
        // shift: trigger once, then the NEXT full window (pure new-regime
        // samples, not the mixed transition window) defines the baseline
        let mut fired = 0;
        for _ in 0..8 {
            if m.observe(0.40) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        assert_eq!(m.baseline(), Some(0.40), "baseline must be the new regime's level");
        // stable at the new level: no further triggers
        for _ in 0..20 {
            assert!(!m.observe(0.40));
        }
    }

    #[test]
    fn monitor_improvement_never_triggers() {
        let mut m = ContextMonitor::new(4, 1.1);
        for _ in 0..4 {
            m.observe(0.5);
        }
        // quality improves (signal drops): a degradation guardrail must
        // stay silent no matter how far it improves
        for _ in 0..40 {
            assert!(!m.observe(0.05));
        }
    }

    // -- AdaptiveController over a toy study: domain logic without sims --

    use policysmith_dsl::Mode;
    use policysmith_gen::{Prompt, TokenLedger};

    /// Accepts anything not containing "bad"; scores by source length.
    struct ToyStudy;
    impl Study for ToyStudy {
        type Artifact = String;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<String, String> {
            if source.contains("bad") {
                Err("does not compile here".into())
            } else {
                Ok(source.to_string())
            }
        }
        fn evaluate(&self, artifact: &String) -> f64 {
            artifact.len() as f64 / 100.0
        }
    }

    /// Emits a fixed batch once per round; an empty batch makes any
    /// accidental `run_search` panic, proving no search ran.
    struct FixedGen {
        batch: Vec<String>,
        ledger: TokenLedger,
    }
    impl Generator for FixedGen {
        fn generate(&mut self, _prompt: &Prompt, _n: usize) -> Vec<String> {
            self.batch.clone()
        }
        fn repair(&mut self, _p: &Prompt, _s: &str, _e: &str) -> Option<String> {
            None
        }
        fn ledger(&self) -> &TokenLedger {
            &self.ledger
        }
    }

    fn tiny_cfg() -> SearchConfig {
        SearchConfig { rounds: 1, candidates_per_round: 1, ..SearchConfig::quick() }
    }

    fn entry(source: &str, score: f64) -> LibraryEntry {
        LibraryEntry { context: "home".into(), source: source.into(), score }
    }

    #[test]
    fn adapt_reuses_a_fitting_library_entry_without_searching() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.05);
        ctrl.deploy(entry("aaaaaaaaaa", 0.3)); // re-scores to 0.10 ≥ 0.05
        let mut gen = FixedGen { batch: vec![], ledger: TokenLedger::default() };
        let a = ctrl.adapt("shifted", &ToyStudy, &mut gen, &tiny_cfg());
        match a {
            Adaptation::FromLibrary { entry, score } => {
                assert_eq!(entry.source, "aaaaaaaaaa");
                assert!((score - 0.10).abs() < 1e-12);
            }
            other => panic!("expected reuse, got {other:?}"),
        }
        assert!(!ctrl.adaptations()[0].resynthesized());
        assert_eq!(ctrl.library().len(), 1, "reuse must not grow the library");
        assert_eq!(ctrl.deployed().unwrap().source, "aaaaaaaaaa");
    }

    #[test]
    fn adapt_resynthesizes_when_no_stored_policy_fits() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.5);
        ctrl.deploy(entry("aaaaaaaaaa", 0.3)); // re-scores to 0.10 < 0.5
        let fresh = "f".repeat(64);
        let mut gen = FixedGen { batch: vec![fresh.clone()], ledger: TokenLedger::default() };
        let a = ctrl.adapt("shifted", &ToyStudy, &mut gen, &tiny_cfg());
        assert!(a.resynthesized());
        assert_eq!(a.entry().source, fresh);
        assert_eq!(a.entry().context, "shifted");
        assert_eq!(ctrl.library().len(), 2, "re-synthesis grows the library");
        assert_eq!(ctrl.deployed().unwrap().source, fresh);
        assert_eq!(ctrl.adaptations().len(), 1);
    }

    #[test]
    fn underperforming_search_falls_back_to_the_best_stored_policy() {
        // the stored policy misses the (high) reuse bar, so a search runs —
        // but its winner scores below the stored policy in this context;
        // the controller must deploy the stored one, not regress
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
        let stored = "s".repeat(40); // re-scores to 0.40 < 0.9
        ctrl.deploy(entry(&stored, 0.6));
        let weak = "w".repeat(10); // search winner scores 0.10
        let mut gen = FixedGen { batch: vec![weak.clone()], ledger: TokenLedger::default() };
        let a = ctrl.adapt("shifted", &ToyStudy, &mut gen, &tiny_cfg());
        match a {
            Adaptation::FromLibrary { entry, score } => {
                assert_eq!(entry.source, stored);
                assert!((score - 0.40).abs() < 1e-12);
            }
            other => panic!("expected the stored policy to stay live, got {other:?}"),
        }
        assert_eq!(ctrl.library().len(), 2, "the search winner still joins the library");
        assert_eq!(ctrl.deployed().unwrap().source, stored);
    }

    #[test]
    fn entries_that_do_not_compile_for_the_study_never_win() {
        // a shared library may hold other templates' heuristics; they
        // score -∞ here and fall through to re-synthesis even with a
        // bottomless reuse threshold
        let mut ctrl =
            AdaptiveController::new(ContextMonitor::new(2, 1.2), -1_000.0).with_library({
                let mut lib = HeuristicLibrary::new();
                lib.add(entry("bad cross-template source", 0.9));
                lib
            });
        let mut gen = FixedGen { batch: vec!["ok".into()], ledger: TokenLedger::default() };
        let a = ctrl.adapt("shifted", &ToyStudy, &mut gen, &tiny_cfg());
        assert!(a.resynthesized());
        assert_eq!(a.entry().source, "ok");
    }

    #[test]
    fn try_reuse_answers_without_a_ticket_when_a_stored_policy_fits() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.05);
        ctrl.deploy(entry("aaaaaaaaaa", 0.3)); // re-scores to 0.10 ≥ 0.05
        let a = ctrl.try_reuse(&ToyStudy).expect("stored policy clears the bar");
        match a {
            Adaptation::FromLibrary { entry, score } => {
                assert_eq!(entry.source, "aaaaaaaaaa");
                assert!((score - 0.10).abs() < 1e-12);
            }
            other => panic!("expected reuse, got {other:?}"),
        }
        assert_eq!(ctrl.adaptations().len(), 1);
        assert_eq!(ctrl.deployed().unwrap().source, "aaaaaaaaaa");
    }

    #[test]
    fn split_api_reproduces_adapt_exactly() {
        // the non-blocking split (try_reuse → external search →
        // finish_search) must land at the same deployed policy, library,
        // and adaptation record as the blocking `adapt` — including the
        // never-regress case where the search winner loses to a stored
        // policy that merely missed the reuse bar
        for (stored_len, fresh_len) in [(40usize, 10usize), (10, 64)] {
            let build = || {
                let mut c = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
                c.deploy(entry(&"s".repeat(stored_len), 0.6));
                c
            };
            let fresh = "f".repeat(fresh_len);

            let mut blocking = build();
            let mut gen = FixedGen { batch: vec![fresh.clone()], ledger: TokenLedger::default() };
            let a = blocking.adapt("shifted", &ToyStudy, &mut gen, &tiny_cfg());

            let mut split = build();
            let ticket = split.try_reuse(&ToyStudy).expect_err("0.9 bar is out of reach");
            assert!(
                ticket.best_stored().is_some_and(|(e, s)| {
                    e.source == "s".repeat(stored_len)
                        && (s - stored_len as f64 / 100.0).abs() < 1e-12
                }),
                "ticket must carry the re-scored best stored entry"
            );
            // the "external search": same generator, same config, run by the caller
            let mut gen2 = FixedGen { batch: vec![fresh.clone()], ledger: TokenLedger::default() };
            let outcome = run_search(&ToyStudy, &mut gen2, &tiny_cfg());
            let b = split.finish_search("shifted", ticket, outcome.best);

            assert_eq!(a, b, "stored_len={stored_len}");
            assert_eq!(blocking.deployed(), split.deployed());
            assert_eq!(blocking.library().entries(), split.library().entries());
            assert_eq!(blocking.adaptations(), split.adaptations());
        }
    }

    #[test]
    fn finish_search_on_an_empty_library_deploys_the_winner() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.5);
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("empty library cannot reuse");
        assert!(ticket.best_stored().is_none());
        let winner = Scored { source: "w".repeat(30), score: 0.30, round: 0 };
        let a = ctrl.finish_search("ctx", ticket, winner);
        assert!(a.resynthesized());
        assert_eq!(ctrl.library().len(), 1);
        assert_eq!(ctrl.deployed().unwrap().source, "w".repeat(30));
    }

    #[test]
    fn observe_delegates_to_the_monitor() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(1, 1.2), 0.0);
        assert!(!ctrl.observe(0.30), "first sample only baselines");
        assert_eq!(ctrl.monitor().baseline(), Some(0.30));
        assert!(ctrl.observe(0.45), "20% guardrail exceeded");
    }

    // -- poisoning --

    #[test]
    fn poisoned_entries_are_skipped_by_best_for() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("winner-by-score", 0.9));
        lib.add(entry("runner-up", 0.5));
        assert!(lib.poison("winner-by-score"));
        assert!(!lib.poison("winner-by-score"), "second poison is a no-op");
        let (best, _) = lib.best_for(|e| e.score).unwrap();
        assert_eq!(best.source, "runner-up");
        assert!(lib.is_poisoned("winner-by-score"));
        assert_eq!(lib.poisoned().collect::<Vec<_>>(), vec!["winner-by-score"]);
    }

    #[test]
    fn fully_poisoned_library_has_no_best() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("only", 0.9));
        lib.poison("only");
        assert!(lib.best_for(|e| e.score).is_none());
    }

    #[test]
    fn poisoning_survives_re_adds() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("faulty", 0.9));
        lib.poison("faulty");
        // the same source re-enters under a different context and score —
        // the quarantine is keyed by source text, so it still applies
        lib.add(LibraryEntry { context: "elsewhere".into(), source: "faulty".into(), score: 2.0 });
        assert!(lib.best_for(|e| e.score).is_none());
        assert_eq!(lib.len(), 2, "poisoning hides entries, it does not delete them");
    }

    #[test]
    fn unpoison_is_the_only_way_back() {
        let mut lib = HeuristicLibrary::new();
        lib.add(entry("faulty", 0.9));
        lib.poison("faulty");
        assert!(lib.best_for(|e| e.score).is_none());
        assert!(lib.unpoison("faulty"));
        assert!(!lib.unpoison("faulty"), "second unpoison is a no-op");
        let (best, _) = lib.best_for(|e| e.score).unwrap();
        assert_eq!(best.source, "faulty");
    }

    #[test]
    fn try_reuse_skips_poisoned_entries() {
        // the poisoned entry would easily clear the reuse bar; a clean but
        // worse entry must win instead
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.05);
        ctrl.deploy(entry(&"p".repeat(50), 0.5)); // re-scores to 0.50
        ctrl.deploy(entry(&"c".repeat(10), 0.1)); // re-scores to 0.10
        ctrl.poison(&"p".repeat(50));
        let a = ctrl.try_reuse(&ToyStudy).expect("the clean entry clears the bar");
        assert_eq!(a.entry().source, "c".repeat(10));
    }

    #[test]
    fn finish_search_never_deploys_a_stored_entry_poisoned_after_ticketing() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
        let stored = "s".repeat(40); // re-scores to 0.40, beats the weak winner
        ctrl.deploy(entry(&stored, 0.6));
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("0.9 bar is out of reach");
        // a quarantine lands while the search is running
        ctrl.poison(&stored);
        let winner = Scored { source: "w".repeat(10), score: 0.10, round: 0 };
        let a = ctrl.finish_search("shifted", ticket, winner);
        assert!(a.resynthesized(), "the poisoned stored entry must not win the comparison");
        assert_eq!(ctrl.deployed().unwrap().source, "w".repeat(10));
    }

    // -- retry/backoff + watchdog --

    /// Fails `fail_first` try_generate calls, then behaves like FixedGen.
    struct FlakyFixed {
        batch: Vec<String>,
        fail_first: usize,
        calls: usize,
        ledger: TokenLedger,
    }
    impl Generator for FlakyFixed {
        fn generate(&mut self, _p: &Prompt, _n: usize) -> Vec<String> {
            self.batch.clone()
        }
        fn try_generate(
            &mut self,
            p: &Prompt,
            n: usize,
        ) -> Result<Vec<String>, policysmith_gen::GenError> {
            self.calls += 1;
            if self.calls <= self.fail_first {
                Err(policysmith_gen::GenError::Unavailable("down".into()))
            } else {
                Ok(self.generate(p, n))
            }
        }
        fn repair(&mut self, _p: &Prompt, _s: &str, _e: &str) -> Option<String> {
            None
        }
        fn ledger(&self) -> &TokenLedger {
            &self.ledger
        }
    }

    #[test]
    fn retry_recovers_from_transient_generator_failures() {
        let mut gen = FlakyFixed {
            batch: vec!["okokok".into()],
            fail_first: 2,
            calls: 0,
            ledger: TokenLedger::default(),
        };
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            deadline_ms: u64::MAX,
        };
        let r = run_search_with_retry(&ToyStudy, &mut gen, &tiny_cfg(), &retry);
        assert!(r.gave_up.is_none());
        assert_eq!(r.failures.len(), 2, "two failed attempts precede the success");
        assert_eq!(r.outcome.unwrap().best.source, "okokok");
    }

    #[test]
    fn retry_gives_up_after_the_attempt_budget() {
        let mut gen = FlakyFixed {
            batch: vec!["ok".into()],
            fail_first: usize::MAX,
            calls: 0,
            ledger: TokenLedger::default(),
        };
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            deadline_ms: u64::MAX,
        };
        let r = run_search_with_retry(&ToyStudy, &mut gen, &tiny_cfg(), &retry);
        assert_eq!(r.gave_up, Some(GiveUp::AttemptsExhausted));
        assert_eq!(r.failures.len(), 3);
        assert!(r.outcome.is_none());
        assert!(r.failures[0].error.contains("unavailable"), "{}", r.failures[0].error);
    }

    #[test]
    fn retry_watchdog_fires_before_sleeping_past_the_deadline() {
        let mut gen = FlakyFixed {
            batch: vec!["ok".into()],
            fail_first: usize::MAX,
            calls: 0,
            ledger: TokenLedger::default(),
        };
        // huge attempt budget, but each backoff would sleep 10s: the 1ms
        // deadline must cut the loop off after the first failure
        let retry = RetryPolicy {
            max_attempts: 1000,
            backoff_base_ms: 10_000,
            backoff_cap_ms: 10_000,
            deadline_ms: 1,
        };
        let t0 = std::time::Instant::now();
        let r = run_search_with_retry(&ToyStudy, &mut gen, &tiny_cfg(), &retry);
        assert_eq!(r.gave_up, Some(GiveUp::DeadlineExceeded));
        assert_eq!(r.failures.len(), 1);
        assert!(t0.elapsed() < Duration::from_secs(5), "the watchdog must not sleep the backoff");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let retry = RetryPolicy {
            max_attempts: 8,
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            deadline_ms: 0,
        };
        assert_eq!(retry.backoff_ms(0), 10);
        assert_eq!(retry.backoff_ms(1), 20);
        assert_eq!(retry.backoff_ms(2), 40);
        assert_eq!(retry.backoff_ms(3), 50, "capped");
        assert_eq!(retry.backoff_ms(63), 50, "shift overflow saturates at the cap");
    }

    #[test]
    fn abandon_search_falls_back_to_the_ticketed_best_stored_entry() {
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
        let stored = "s".repeat(40);
        ctrl.deploy(entry(&stored, 0.6));
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("0.9 bar is out of reach");
        let a = ctrl.abandon_search(ticket).expect("the stored entry is deployable");
        assert_eq!(a.entry().source, stored);
        assert!(!a.resynthesized());
        assert_eq!(ctrl.deployed().unwrap().source, stored);
        assert_eq!(ctrl.adaptations().len(), 1);
    }

    #[test]
    fn abandon_search_refuses_poisoned_or_unusable_fallbacks() {
        // empty library: nothing to fall back to
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("empty library");
        assert!(ctrl.abandon_search(ticket).is_none());
        assert!(ctrl.adaptations().is_empty());

        // the only stored entry was poisoned while the search was failing
        let stored = "s".repeat(40);
        ctrl.deploy(entry(&stored, 0.6));
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("0.9 bar is out of reach");
        ctrl.poison(&stored);
        assert!(ctrl.abandon_search(ticket).is_none(), "a poisoned fallback must stay dead");
        assert_eq!(ctrl.deployed().unwrap().source, stored, "the incumbent simply stays live");

        // a -∞-scoring entry (does not compile here) is not a fallback
        let mut ctrl = AdaptiveController::new(ContextMonitor::new(2, 1.2), 0.9);
        ctrl.deploy(entry("bad cross-template source", 0.9));
        let ticket = ctrl.try_reuse(&ToyStudy).expect_err("-inf misses any bar");
        assert!(ctrl.abandon_search(ticket).is_none());
    }
}
