//! The §3.1 context layer: a library of synthesized heuristics and a
//! guardrail-style drift monitor.
//!
//! The paper explicitly scopes context *detection* out ("this paper does
//! not focus on designing context-detection or runtime-adaptation systems,
//! and rather assumes such triggers are available") — this module provides
//! the minimal such trigger so the end-to-end loop (§3.1: drift → offline
//! re-synthesis → grow the library → adaptation picks from it) can be
//! demonstrated and tested, not a research contribution.

use std::collections::VecDeque;

/// One synthesized heuristic with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntry {
    /// Context identifier (e.g. `cloudphysics/w89`).
    pub context: String,
    /// Heuristic source.
    pub source: String,
    /// Score in its home context (improvement over FIFO).
    pub score: f64,
}

/// A growing library of PolicySmith-generated heuristics (§3.1: "over
/// time, this enables building a library … providing better options for an
/// adaptation system to choose from").
#[derive(Debug, Clone, Default)]
pub struct HeuristicLibrary {
    entries: Vec<LibraryEntry>,
}

impl HeuristicLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a synthesized heuristic.
    pub fn add(&mut self, entry: LibraryEntry) {
        self.entries.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[LibraryEntry] {
        &self.entries
    }

    /// Number of stored heuristics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the library empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pick the best heuristic for a context by *evaluating* every stored
    /// candidate with the supplied scorer (the oracle-adaptation model of
    /// §4.2.4) and returning the winner.
    pub fn best_for<F: FnMut(&LibraryEntry) -> f64>(
        &self,
        mut scorer: F,
    ) -> Option<(&LibraryEntry, f64)> {
        self.entries
            .iter()
            .map(|e| {
                let s = scorer(e);
                (e, s)
            })
            .max_by(|a, b| {
                // NaN-safe: a scorer returning NaN (e.g. a degenerate
                // improvement ratio) must neither panic nor win.
                let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
                key(a.1).total_cmp(&key(b.1))
            })
    }
}

/// A guardrail-style drift detector over a streaming quality signal (miss
/// ratio, loss rate, …): triggers when the rolling mean degrades past
/// `tolerance ×` the baseline established at deployment (§3.1.2's
/// "implicit context shifts").
#[derive(Debug, Clone)]
pub struct ContextMonitor {
    window: VecDeque<f64>,
    window_size: usize,
    baseline: Option<f64>,
    tolerance: f64,
}

impl ContextMonitor {
    /// Monitor with a rolling window and a degradation tolerance (e.g.
    /// `1.2` = trigger at 20% worse than baseline).
    pub fn new(window_size: usize, tolerance: f64) -> Self {
        assert!(window_size > 0 && tolerance > 1.0);
        ContextMonitor { window: VecDeque::new(), window_size, baseline: None, tolerance }
    }

    /// Feed one sample of the quality signal (lower = better, e.g. miss
    /// ratio). Returns `true` when drift is detected — the caller should
    /// trigger re-synthesis (and this monitor re-baselines).
    pub fn observe(&mut self, sample: f64) -> bool {
        self.window.push_back(sample);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
        if self.window.len() < self.window_size {
            return false;
        }
        let mean = self.window.iter().sum::<f64>() / self.window.len() as f64;
        match self.baseline {
            None => {
                // first full window defines the deployment baseline
                self.baseline = Some(mean);
                false
            }
            Some(base) => {
                if mean > base * self.tolerance {
                    // drop the baseline: the next full window (i.e. the new
                    // regime, not the mixed transition window) redefines it
                    self.baseline = None;
                    self.window.clear();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current baseline, if established.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_best_for_picks_max() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "a".into(), source: "obj.count".into(), score: 0.1 });
        lib.add(LibraryEntry { context: "b".into(), source: "obj.last_access".into(), score: 0.2 });
        let (best, score) = lib.best_for(|e| if e.context == "a" { 0.9 } else { 0.3 }).unwrap();
        assert_eq!(best.context, "a");
        assert!((score - 0.9).abs() < 1e-12);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn monitor_triggers_on_sustained_degradation() {
        let mut m = ContextMonitor::new(10, 1.2);
        // stable regime at 0.30 establishes the baseline
        let mut triggered = false;
        for _ in 0..20 {
            triggered |= m.observe(0.30);
        }
        assert!(!triggered, "no drift in a stable regime");
        assert!(m.baseline().is_some());
        // regime shift to 0.45 (+50%) must trigger within a window or two
        let mut fired = 0;
        for _ in 0..20 {
            if m.observe(0.45) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "exactly one trigger, then re-baseline");
        // the new regime is now the baseline: no more triggers
        let mut more = 0;
        for _ in 0..20 {
            if m.observe(0.45) {
                more += 1;
            }
        }
        assert_eq!(more, 0);
    }

    #[test]
    fn monitor_tolerates_noise_within_tolerance() {
        let mut m = ContextMonitor::new(8, 1.3);
        let mut fired = false;
        for i in 0..100 {
            let noise = if i % 2 == 0 { 0.02 } else { -0.02 };
            fired |= m.observe(0.30 + noise);
        }
        assert!(!fired, "±7% noise must not trigger a 30% guardrail");
    }

    #[test]
    #[should_panic]
    fn monitor_rejects_bad_params() {
        ContextMonitor::new(0, 1.5);
    }

    #[test]
    fn empty_library_has_no_best() {
        let lib = HeuristicLibrary::new();
        assert!(lib.is_empty());
        assert_eq!(lib.len(), 0);
        assert!(lib.best_for(|_| 1.0).is_none());
    }

    #[test]
    fn single_entry_library_always_wins() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "only".into(), source: "obj.count".into(), score: 0.2 });
        let (best, score) = lib.best_for(|e| e.score * 2.0).unwrap();
        assert_eq!(best.context, "only");
        assert!((score - 0.4).abs() < 1e-12);
        assert!(!lib.is_empty());
    }

    #[test]
    fn best_for_survives_nan_scores() {
        let mut lib = HeuristicLibrary::new();
        lib.add(LibraryEntry { context: "a".into(), source: "obj.count".into(), score: 0.1 });
        lib.add(LibraryEntry { context: "b".into(), source: "now".into(), score: 0.2 });
        // a NaN-scoring entry must neither panic the selection nor win it
        let (best, _) = lib.best_for(|e| if e.context == "a" { f64::NAN } else { 0.5 }).unwrap();
        assert_eq!(best.context, "b");
    }

    #[test]
    fn monitor_with_single_sample_window() {
        // window_size = 1: every sample is a full window. The first sample
        // sets the baseline; the next degrading sample triggers at once.
        let mut m = ContextMonitor::new(1, 1.2);
        assert!(!m.observe(0.30), "first sample only establishes the baseline");
        assert_eq!(m.baseline(), Some(0.30));
        assert!(!m.observe(0.35), "within tolerance");
        assert!(m.observe(0.45), "20% guardrail exceeded");
        // re-baselining: the next sample defines the new regime
        assert_eq!(m.baseline(), None);
        assert!(!m.observe(0.45));
        assert_eq!(m.baseline(), Some(0.45));
    }

    #[test]
    fn monitor_before_full_window_never_triggers() {
        let mut m = ContextMonitor::new(10, 1.2);
        for _ in 0..9 {
            assert!(!m.observe(10.0), "no baseline, no trigger");
        }
        assert_eq!(m.baseline(), None, "window not yet full");
        assert!(!m.observe(10.0));
        assert_eq!(m.baseline(), Some(10.0), "10th sample completes the window");
    }

    #[test]
    fn monitor_improvement_never_triggers() {
        let mut m = ContextMonitor::new(4, 1.1);
        for _ in 0..4 {
            m.observe(0.5);
        }
        // quality improves (signal drops): a degradation guardrail must
        // stay silent no matter how far it improves
        for _ in 0..40 {
            assert!(!m.observe(0.05));
        }
    }
}
