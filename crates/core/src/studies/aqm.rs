//! The AQM instantiation — the fourth workload, beyond the paper's two
//! case studies.
//!
//! Context = one [`AqmScenario`] (bottleneck + flow population + seed).
//! The Checker is the full compile-once pipeline — parse → `Mode::Aqm`
//! check → kbpf lowering → verification — so the artifact is a verified
//! [`CompiledPolicy`] (userspace template: unprovable divisions are
//! deferred to the host's latched fallback rather than rejected). The
//! Evaluator replays the scenario with the verdict host managing the
//! bottleneck (pure VM execution per head-of-line packet) and scores the
//! **power improvement over drop-tail** — utilization discounted by RTT
//! inflation, the AQM analogue of the cache study's miss-ratio-over-FIFO
//! — with runtime faults (division by zero on an empty queue) scored as a
//! hard failure. Drop-tail is the natural denominator: it is what a
//! byte-bounded queue does before anyone writes an AQM at all.

use crate::search::Study;
use policysmith_aqmsim::{metrics, AqmScenario, ExprAqm};
use policysmith_dsl::{parse, Mode};
use policysmith_kbpf::CompiledPolicy;

/// One AQM context: scenario + drop-tail reference point.
pub struct AqmStudy {
    scenario: AqmScenario,
    droptail_power: f64,
}

impl AqmStudy {
    /// Build the study for a scenario, fixing drop-tail as the baseline.
    pub fn new(scenario: &AqmScenario) -> Self {
        let dt = metrics::run_baseline(scenario, "drop-tail");
        AqmStudy { scenario: scenario.clone(), droptail_power: dt.power }
    }

    /// The context scenario.
    pub fn scenario(&self) -> &AqmScenario {
        &self.scenario
    }

    /// Drop-tail's power on this context (the denominator).
    pub fn droptail_power(&self) -> f64 {
        self.droptail_power
    }

    /// Power improvement of an arbitrary policy over drop-tail on this
    /// context (0.0 = exactly drop-tail; 1.0 = doubled power).
    pub fn improvement(&self, aqm: Box<dyn policysmith_aqmsim::AqmPolicy>) -> f64 {
        let m = metrics::run(&self.scenario, aqm);
        (m.power - self.droptail_power) / self.droptail_power.max(1e-9)
    }

    /// Improvement of a named man-made baseline (panics on unknown name).
    pub fn baseline_improvement(&self, name: &str) -> f64 {
        let m = metrics::run_baseline(&self.scenario, name);
        (m.power - self.droptail_power) / self.droptail_power.max(1e-9)
    }
}

impl Study for AqmStudy {
    type Artifact = CompiledPolicy;

    fn mode(&self) -> Mode {
        Mode::Aqm
    }

    fn check(&self, source: &str) -> Result<CompiledPolicy, String> {
        let expr = parse(source).map_err(|e| e.to_string())?;
        CompiledPolicy::compile(&expr, Mode::Aqm).map_err(|e| e.to_string())
    }

    fn evaluate(&self, policy: &CompiledPolicy) -> f64 {
        let host = ExprAqm::new("candidate", policy.clone());
        let probe = host.probe();
        let m = metrics::run(&self.scenario, Box::new(host));
        if probe.faulted() {
            // The candidate crashed in production: rank below everything.
            // A finite sentinel is NOT safe — power improvement is bounded
            // below by -1, but keeping the same contract as the other
            // studies (and surviving any future metric change) costs
            // nothing.
            return f64::NEG_INFINITY;
        }
        (m.power - self.droptail_power) / self.droptail_power.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_search, SearchConfig};
    use policysmith_aqmsim::scenario;
    use policysmith_gen::{GenConfig, MockLlm};

    fn study() -> AqmStudy {
        AqmStudy::new(&scenario::steady())
    }

    #[test]
    fn checker_accepts_aqm_and_rejects_faults() {
        let s = study();
        assert!(s.check("if(pkt.sojourn > 5000, 2, 0)").is_ok());
        assert!(s.check("if(q.bytes * 8000000 / q.drain_rate > 15000, 1, 0)").is_ok());
        assert!(s.check("pkt.sojourn * 1.5").is_err(), "float");
        assert!(s.check("obj.count").is_err(), "cache feature");
        assert!(s.check("cwnd + 1").is_err(), "kernel feature");
        assert!(s.check("server.queue_len").is_err(), "lb feature");
        assert!(s.check("q.delay").is_err(), "hallucinated feature");
    }

    #[test]
    fn seeds_score_sanely_and_deterministically() {
        let s = study();
        // the do-nothing verdict IS drop-tail: improvement exactly zero
        let inert = s.evaluate(&s.check("0").unwrap());
        assert!(inert.abs() < 1e-12, "{inert}");
        // a CoDel-flavoured sojourn gate must win power back
        let gate = s.evaluate(&s.check("if(pkt.sojourn > 8000, 2, 0)").unwrap());
        assert!(gate > 0.2, "sojourn gate should beat drop-tail clearly: {gate}");
        // an ECN-marking gate should do at least as well as a crude dropper
        let mark = s.evaluate(&s.check("if(q.ewma_sojourn > 6000, 1, 0)").unwrap());
        assert!(mark > 0.2, "marking gate should beat drop-tail clearly: {mark}");
        assert_eq!(gate, s.evaluate(&s.check("if(pkt.sojourn > 8000, 2, 0)").unwrap()));
    }

    #[test]
    fn baseline_improvements_are_ordered_sanely() {
        let s = study();
        assert!(s.baseline_improvement("drop-tail").abs() < 1e-12);
        let codel = s.baseline_improvement("codel");
        let pie = s.baseline_improvement("pie");
        assert!(codel > 0.0, "codel {codel}");
        assert!(pie > 0.0, "pie {pie}");
    }

    #[test]
    fn runtime_faults_rank_below_every_real_score() {
        let s = study();
        // aqm.drops is 0 until the first drop → division by zero
        let e = s.check("1000 / aqm.drops").unwrap();
        assert_eq!(s.evaluate(&e), f64::NEG_INFINITY);
        // ...including below a fault-free but catastrophic policy
        // (drop-everything starves the link and lands near -1)
        let worst = s.evaluate(&s.check("2").unwrap());
        assert!(worst.is_finite());
        assert!(f64::NEG_INFINITY < worst);
        assert!(worst < -0.5, "drop-everything must crater power: {worst}");
    }

    #[test]
    fn compiled_artifact_scores_match_the_interpreter_oracle() {
        // the study-level differential check: evaluating the verified
        // CompiledPolicy (pure VM execution per packet) must land at
        // exactly the interpreter host's improvement — identical
        // decisions, identical metrics
        let s = study();
        for src in [
            "if(pkt.sojourn > 8000, 2, 0)",
            "if(q.bytes * 100 > q.capacity * 60, 1, 0)",
            "if(q.bytes * 8000000 / q.drain_rate > 15000, 2, 0)",
        ] {
            let compiled = s.evaluate(&s.check(src).unwrap());
            let oracle = ExprAqm::interpreted("oracle", policysmith_dsl::parse(src).unwrap());
            assert_eq!(compiled, s.improvement(Box::new(oracle)), "engines diverged for `{src}`");
        }
    }

    #[test]
    fn quick_search_beats_droptail_on_the_steady_preset() {
        let s = study();
        let mut llm = MockLlm::new(GenConfig::aqm_defaults(29));
        let cfg = SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::quick() };
        let outcome = run_search(&s, &mut llm, &cfg);
        assert!(
            outcome.best.score > 0.0,
            "search best {:.4} must beat the drop-tail denominator",
            outcome.best.score
        );
    }
}
