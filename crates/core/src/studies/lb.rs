//! The load-balancing instantiation — the third workload, beyond the
//! paper's two case studies.
//!
//! Context = one [`Scenario`] (fleet + workload + seed). The Checker is
//! the full compile-once pipeline — parse → `Mode::Lb` check → kbpf
//! lowering → verification — so the artifact is a verified
//! [`CompiledPolicy`] (userspace template: unprovable divisions are
//! deferred to the host's latched fallback rather than rejected). The
//! Evaluator replays the scenario through the argmin scoring host (pure
//! VM execution per server per dispatch) and scores the **mean-slowdown
//! improvement over round-robin** — the load-balancing analogue of the
//! cache study's miss-ratio-over-FIFO, with runtime faults (division by
//! zero on an idle server) scored as a hard failure. Round-robin is the
//! natural denominator: it is what the dispatch tier does before anyone
//! writes a heuristic at all.

use crate::search::Study;
use policysmith_dsl::{parse, Mode};
use policysmith_kbpf::CompiledPolicy;
use policysmith_lbsim::{sim, Dispatcher, ExprDispatcher, LbRequest, Scenario};

/// One load-balancing context: scenario + round-robin reference point.
pub struct LbStudy {
    scenario: Scenario,
    requests: Vec<LbRequest>,
    rr_slowdown: f64,
}

impl LbStudy {
    /// Build the study for a scenario, fixing round-robin as the baseline.
    pub fn new(scenario: &Scenario) -> Self {
        let requests = scenario.requests();
        let rr = sim::run(
            &scenario.servers,
            &requests,
            &mut policysmith_lbsim::dispatch::RoundRobin::new(),
        );
        LbStudy { scenario: scenario.clone(), requests, rr_slowdown: rr.mean_slowdown() }
    }

    /// The context scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Round-robin's mean slowdown on this context (the denominator).
    pub fn rr_slowdown(&self) -> f64 {
        self.rr_slowdown
    }

    /// Mean-slowdown improvement of an arbitrary dispatcher over
    /// round-robin on this context (1.0 would mean slowdown reached zero).
    pub fn improvement<D: Dispatcher>(&self, dispatcher: &mut D) -> f64 {
        let m = sim::run(&self.scenario.servers, &self.requests, dispatcher);
        (self.rr_slowdown - m.mean_slowdown()) / self.rr_slowdown.max(1e-9)
    }

    /// Improvement of a named classical baseline (panics on unknown name).
    pub fn baseline_improvement(&self, name: &str) -> f64 {
        let mut d = policysmith_lbsim::by_name(name)
            .unwrap_or_else(|| panic!("unknown lb baseline `{name}`"));
        self.improvement(&mut d)
    }
}

impl Study for LbStudy {
    type Artifact = CompiledPolicy;

    fn mode(&self) -> Mode {
        Mode::Lb
    }

    fn check(&self, source: &str) -> Result<CompiledPolicy, String> {
        let expr = parse(source).map_err(|e| e.to_string())?;
        CompiledPolicy::compile(&expr, Mode::Lb).map_err(|e| e.to_string())
    }

    fn evaluate(&self, policy: &CompiledPolicy) -> f64 {
        let mut host = ExprDispatcher::new("candidate", policy.clone());
        let m = sim::run(&self.scenario.servers, &self.requests, &mut host);
        if host.first_error().is_some() {
            // The candidate crashed in production: rank below everything.
            // A finite sentinel like -1.0 is NOT safe here — slowdown
            // improvement is unbounded below, so a fault-free but terrible
            // candidate (drop-storming every queue) can legitimately score
            // under any constant.
            return f64::NEG_INFINITY;
        }
        (self.rr_slowdown - m.mean_slowdown()) / self.rr_slowdown.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_search, SearchConfig};
    use policysmith_gen::{GenConfig, MockLlm};
    use policysmith_lbsim::scenario;

    fn study() -> LbStudy {
        LbStudy::new(&scenario::flash_crowd())
    }

    #[test]
    fn checker_accepts_lb_and_rejects_faults() {
        let s = study();
        assert!(s.check("server.queue_len").is_ok());
        assert!(s.check("server.inflight * 1000 / server.speed").is_ok());
        assert!(s.check("server.queue_len * 1.5").is_err(), "float");
        assert!(s.check("obj.count").is_err(), "cache feature");
        assert!(s.check("cwnd + 1").is_err(), "kernel feature");
        assert!(s.check("server.load").is_err(), "hallucinated feature");
    }

    #[test]
    fn seeds_score_sanely_and_deterministically() {
        let s = study();
        let jsq = s.evaluate(&s.check("server.inflight").unwrap());
        let norm = s.evaluate(&s.check("server.inflight * 1000 / server.speed").unwrap());
        for v in [jsq, norm] {
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
        assert!(norm > jsq, "speed-normalized ({norm}) must beat raw JSQ ({jsq}) here");
        assert_eq!(jsq, s.evaluate(&s.check("server.inflight").unwrap()));
    }

    #[test]
    fn runtime_faults_rank_below_every_real_score() {
        let s = study();
        // queue_len is 0 on the first dispatch → division by zero
        let e = s.check("1000 / server.queue_len").unwrap();
        assert_eq!(s.evaluate(&e), f64::NEG_INFINITY);
        // …including below a fault-free but catastrophic policy
        // (join-LONGEST-queue drop-storms one server at a time and scores
        // far under -1, which is why -1.0 was not a safe crash sentinel)
        let worst = s.evaluate(&s.check("0 - server.queue_len").unwrap());
        assert!(worst.is_finite());
        assert!(f64::NEG_INFINITY < worst);
    }

    #[test]
    fn compiled_artifact_scores_match_the_interpreter_oracle() {
        // the study-level differential check: evaluating the verified
        // CompiledPolicy (pure VM execution per server) must land at
        // exactly the interpreter host's improvement — identical picks,
        // identical slowdowns
        let s = study();
        for src in [
            "server.inflight",
            "server.inflight * 1000 / server.speed + server.queue_len * 50",
            "server.work_left + req.size * 1000 / server.speed",
        ] {
            let compiled = s.evaluate(&s.check(src).unwrap());
            let mut oracle =
                ExprDispatcher::interpreted("oracle", policysmith_dsl::parse(src).unwrap());
            assert_eq!(compiled, s.improvement(&mut oracle), "engines diverged for `{src}`");
        }
    }

    #[test]
    fn improvement_of_rr_is_zero() {
        let s = study();
        let mut rr = policysmith_lbsim::dispatch::RoundRobin::new();
        assert!(s.improvement(&mut rr).abs() < 1e-12);
    }

    #[test]
    fn quick_search_beats_jsq_on_the_flash_crowd() {
        let s = study();
        let jsq = s.baseline_improvement("jsq");
        let mut llm = MockLlm::new(GenConfig::lb_defaults(23));
        let cfg = SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::quick() };
        let outcome = run_search(&s, &mut llm, &cfg);
        assert!(
            outcome.best.score > jsq.max(0.0),
            "search best {:.4} vs jsq {:.4}",
            outcome.best.score,
            jsq
        );
    }
}
