//! The congestion-control instantiation (§5).
//!
//! The Checker is the full kernel pipeline — parse → kernel-mode check →
//! kbpf lowering → **verifier** (§5.0.2: "all candidate programs pass the
//! eBPF verifier before execution — which acts as the Checker"). The
//! Evaluator runs the verified program on the emulated 12 Mbps / 20 ms
//! link and scores a throughput/delay tradeoff. The paper's §5 does not
//! define a single objective (it reports the behaviour *range*); ours is
//! `utilization − λ · qdelay/qdelay_max`, documented here and swept in the
//! ablation bench.

use crate::search::Study;
use policysmith_cc::{check_candidate, evaluate_with, KbpfCc, SimConfig, VerifiedCandidate};
use policysmith_dsl::Mode;

/// Weight of the queuing-delay penalty in the score.
pub const DELAY_WEIGHT: f64 = 0.5;
/// Normalizer: the buffer's worst-case queuing delay on the paper link.
pub const QDELAY_NORM_US: f64 = 40_000.0;

/// The kernel CC search context: an emulated link plus an evaluation
/// length. The paper evaluates on one fixed link; making the scenario a
/// study *parameter* is what lets the adaptation loop treat a link-property
/// shift (an RTT or bandwidth step mid-deployment) as just another drifted
/// context to re-synthesize for.
pub struct CcStudy {
    cfg: SimConfig,
}

impl CcStudy {
    /// Default: the paper link with 10-second emulated runs (a compromise
    /// between fidelity and search throughput; the experiment binaries use
    /// 30 s like the paper).
    pub fn new() -> Self {
        Self::with_duration(10_000_000)
    }

    /// The paper link with an explicit emulation length.
    pub fn with_duration(duration_us: u64) -> Self {
        let mut cfg = SimConfig::paper_scenario();
        cfg.duration_us = duration_us;
        CcStudy { cfg }
    }

    /// An explicit emulated scenario — a drifted link (longer RTT, less
    /// bandwidth, deeper buffer) is a different search context.
    pub fn with_scenario(cfg: SimConfig) -> Self {
        CcStudy { cfg }
    }

    /// Emulation length per evaluation, µs.
    pub fn duration_us(&self) -> u64 {
        self.cfg.duration_us
    }

    /// The emulated scenario candidates are scored on.
    pub fn scenario(&self) -> &SimConfig {
        &self.cfg
    }

    /// The §5.0.3 metrics for one verified candidate.
    pub fn metrics(&self, candidate: &VerifiedCandidate) -> policysmith_cc::CcMetrics {
        evaluate_with(self.cfg, Box::new(KbpfCc::new(candidate.clone())))
    }
}

impl Default for CcStudy {
    fn default() -> Self {
        Self::new()
    }
}

impl Study for CcStudy {
    type Artifact = VerifiedCandidate;

    fn mode(&self) -> Mode {
        Mode::Kernel
    }

    fn check(&self, source: &str) -> Result<VerifiedCandidate, String> {
        check_candidate(source).map_err(|e| e.to_string())
    }

    fn evaluate(&self, candidate: &VerifiedCandidate) -> f64 {
        let m = self.metrics(candidate);
        m.utilization - DELAY_WEIGHT * (m.mean_qdelay_us / QDELAY_NORM_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_search, SearchConfig};
    use policysmith_gen::{GenConfig, MockLlm};

    #[test]
    fn checker_is_the_verifier() {
        let s = CcStudy::new();
        assert!(s.check("if(loss, max(cwnd >> 1, 2), cwnd + 1)").is_ok());
        let err = s.check("cwnd / inflight").unwrap_err();
        assert!(err.contains("divisor"), "{err}");
        let err = s.check("cwnd * 0.5").unwrap_err();
        assert!(err.to_lowercase().contains("float"), "{err}");
    }

    #[test]
    fn score_orders_good_and_bad_controllers() {
        let s = CcStudy::with_duration(5_000_000);
        let aimd = s.check("if(loss, max(cwnd >> 1, 2), cwnd + 1)").unwrap();
        let frozen = s.check("2").unwrap(); // minimal window forever
        assert!(s.evaluate(&aimd) > s.evaluate(&frozen));
    }

    #[test]
    fn tiny_cc_search_runs_end_to_end() {
        let s = CcStudy::with_duration(2_000_000);
        let mut llm = MockLlm::new(GenConfig::kernel_defaults(31));
        let cfg = SearchConfig { rounds: 3, candidates_per_round: 6, ..SearchConfig::quick() };
        let outcome = run_search(&s, &mut llm, &cfg);
        assert!(outcome.best.score > 0.0, "best {:?}", outcome.best);
        // compile statistics exist and are plausible (§5.0.3 band)
        let total: usize = outcome.rounds.iter().map(|r| r.generated).sum();
        let first: usize = outcome.rounds.iter().map(|r| r.passed_first).sum();
        assert!(first > total / 3, "first-pass rate collapsed: {first}/{total}");
    }
}
