//! The case-study instantiations of the framework: the paper's two
//! (caching §4, kernel congestion control §5) plus the load-balancing
//! and AQM workloads that prove the `Study` boundary generalizes.

pub mod aqm;
pub mod cache;
pub mod cc;
pub mod lb;
