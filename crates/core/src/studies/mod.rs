//! The paper's two case-study instantiations of the framework.

pub mod cache;
pub mod cc;
