//! The web-caching instantiation (§4).
//!
//! Context = one trace + a cache sized at 10% of its footprint (§4.1.4).
//! The Checker is the full compile-once pipeline — parse → cache-mode
//! check → kbpf lowering → verification (§4.1.3: "most errors surface as
//! build failures") — so the artifact handed to the Evaluator is a
//! verified [`CompiledPolicy`], not an AST. The Evaluator replays the
//! trace through the priority-template host (pure VM execution on the hot
//! path) and scores the **miss-ratio improvement over FIFO** — the exact
//! metric Fig. 2 plots — with runtime faults (division by zero, deferred
//! by the userspace verification policy) scored as a hard failure.

use crate::search::Study;
use policysmith_cachesim::{Cache, PriorityPolicy};
use policysmith_dsl::{parse, Mode};
use policysmith_kbpf::CompiledPolicy;
use policysmith_traces::Trace;

/// One caching context: trace + capacity + FIFO reference point.
pub struct CacheStudy {
    trace: Trace,
    capacity: u64,
    fifo_miss_ratio: f64,
    btree_host: bool,
}

impl CacheStudy {
    /// Build the study for `trace` at the paper's 10%-of-footprint sizing.
    pub fn new(trace: &Trace) -> Self {
        let capacity = (policysmith_traces::footprint_bytes(trace) / 10).max(1);
        Self::with_capacity(trace, capacity)
    }

    /// Build with an explicit capacity (for capacity-sweep ablations).
    pub fn with_capacity(trace: &Trace, capacity: u64) -> Self {
        let fifo = policysmith_cachesim::simulate(
            trace,
            capacity,
            policysmith_cachesim::policies::Fifo::new(),
        );
        CacheStudy {
            trace: trace.clone(),
            capacity,
            fifo_miss_ratio: fifo.miss_ratio(),
            btree_host: false,
        }
    }

    /// Evaluate candidates on the reference `BTreeSet`-ranked host instead
    /// of the slab + lazy-heap one — the pre-optimization evaluator, kept
    /// as the throughput baseline and for differential measurements. The
    /// two hosts produce identical simulations, so scores do not change.
    pub fn with_btree_host(mut self) -> Self {
        self.btree_host = true;
        self
    }

    /// The context's cache capacity, bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// FIFO's miss ratio on this context (the Fig. 2 denominator).
    pub fn fifo_miss_ratio(&self) -> f64 {
        self.fifo_miss_ratio
    }

    /// Miss-ratio improvement of an arbitrary policy over FIFO on this
    /// context — the quantity plotted in Fig. 2.
    pub fn improvement<P: policysmith_cachesim::Policy>(&self, policy: P) -> f64 {
        let r = policysmith_cachesim::simulate(&self.trace, self.capacity, policy);
        (self.fifo_miss_ratio - r.miss_ratio()) / self.fifo_miss_ratio.max(1e-9)
    }
}

impl Study for CacheStudy {
    type Artifact = CompiledPolicy;

    fn mode(&self) -> Mode {
        Mode::Cache
    }

    fn check(&self, source: &str) -> Result<CompiledPolicy, String> {
        let expr = parse(source).map_err(|e| e.to_string())?;
        CompiledPolicy::compile(&expr, Mode::Cache).map_err(|e| e.to_string())
    }

    fn evaluate(&self, policy: &CompiledPolicy) -> f64 {
        let host = PriorityPolicy::new("candidate", policy.clone());
        let host = if self.btree_host { host.use_btree_ranking() } else { host };
        let mut cache = Cache::new(self.capacity, host);
        let result = cache.run(&self.trace);
        if cache.policy.first_error().is_some() {
            // The candidate crashed in production: rank below everything.
            // Improvement over FIFO is bounded below by 1 − 1/fifo_mr,
            // which dips under any finite sentinel once FIFO's miss ratio
            // is small, so NEG_INFINITY is the only safe crash score.
            return f64::NEG_INFINITY;
        }
        (self.fifo_miss_ratio - result.miss_ratio()) / self.fifo_miss_ratio.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_search, SearchConfig};
    use policysmith_gen::{GenConfig, MockLlm};
    use policysmith_traces::cloudphysics;

    fn study() -> CacheStudy {
        CacheStudy::new(&cloudphysics().trace(89, 30_000))
    }

    #[test]
    fn checker_accepts_seeds_and_rejects_faults() {
        let s = study();
        assert!(s.check("obj.last_access").is_ok());
        assert!(s.check("obj.count").is_ok());
        assert!(s.check("obj.count * 1.5").is_err());
        assert!(s.check("cwnd + 1").is_err());
        assert!(s.check("obj.frequency").is_err());
    }

    #[test]
    fn seeds_score_sanely() {
        let s = study();
        let lru = s.evaluate(&s.check("obj.last_access").unwrap());
        let lfu = s.evaluate(&s.check("obj.count").unwrap());
        // improvements are relative to FIFO: both seeds must be within
        // sane bounds, and deterministic
        for v in [lru, lfu] {
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
        assert_eq!(lru, s.evaluate(&s.check("obj.last_access").unwrap()));
    }

    #[test]
    fn runtime_faults_rank_below_every_real_score() {
        let s = study();
        // cache.objects - 1 is zero while exactly one object is resident
        let e = s.check("100 / (cache.objects - 1)").unwrap();
        assert_eq!(s.evaluate(&e), f64::NEG_INFINITY);
    }

    #[test]
    fn compiled_artifact_scores_match_the_interpreter_oracle() {
        // the study-level differential check: `check()` hands back a
        // verified CompiledPolicy, and evaluating it (pure VM execution)
        // must land at exactly the interpreter host's improvement
        let s = study();
        for src in [
            "obj.last_access",
            "obj.count * 20 - obj.age / 300 - obj.size / 500",
            "if(hist.contains, hist.count * 10 + 50, 0) + obj.last_access",
        ] {
            let compiled = s.evaluate(&s.check(src).unwrap());
            let oracle = s.improvement(policysmith_cachesim::PriorityPolicy::interpreted(
                "oracle",
                policysmith_dsl::parse(src).unwrap(),
            ));
            assert_eq!(compiled, oracle, "engines diverged for `{src}`");
        }
    }

    #[test]
    fn btree_reference_host_scores_identically() {
        let fast = study();
        let slow = study().with_btree_host();
        for src in ["obj.last_access", "obj.count * 20 - obj.age / 300 - obj.size / 500"] {
            assert_eq!(
                fast.evaluate(&fast.check(src).unwrap()),
                slow.evaluate(&slow.check(src).unwrap()),
                "ranking structures diverged for `{src}`"
            );
        }
    }

    #[test]
    fn quick_search_beats_the_seeds() {
        let s = study();
        let lru = s.evaluate(&s.check("obj.last_access").unwrap());
        let lfu = s.evaluate(&s.check("obj.count").unwrap());
        let mut llm = MockLlm::new(GenConfig::cache_defaults(21));
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::quick() };
        let outcome = run_search(&s, &mut llm, &cfg);
        assert!(
            outcome.best.score >= lru.max(lfu),
            "search best {:.4} vs seeds lru {:.4} lfu {:.4}",
            outcome.best.score,
            lru,
            lfu
        );
    }
}
