//! The evolutionary search loop (Fig. 1 of the paper).
//!
//! Round structure per §4.2.1: the Generator is prompted with the template
//! plus the **top-k candidates across all previous rounds** as exemplars
//! and produces a batch; the Checker filters (with one stderr-feedback
//! repair attempt per rejected candidate, §4.1.3/§5.0.3); the Evaluator
//! scores survivors — in parallel, since candidate evaluations are
//! independent simulations. The loop is generic over both the study and
//! the generator, so a real LLM client slots in behind
//! [`policysmith_gen::Generator`] unchanged.
//!
//! ## Throughput
//!
//! Two executors share the round logic. The **sequential** executor is the
//! paper's loop: generate → check → evaluate, barrier per round. The
//! **pipelined** executor ([`SearchConfig::pipeline`]) keeps the cores
//! busy: persistent evaluation workers drain a task queue while the main
//! thread — which owns the generator — speculatively generates and checks
//! round N+1 against the exemplar set frozen when round N's evaluation
//! started. That freeze is expressed as [`SearchConfig::exemplar_lag`]:
//! round N's prompt ranks candidates from rounds `< N - lag`, so a
//! sequential run with the same lag produces a bit-identical
//! [`SearchOutcome`] — the equivalence the tests pin down. Scores are
//! written lock-free into per-round slots (indexed atomic stores, no
//! result mutex), and because [`Study::evaluate`] is pure by contract, a
//! cross-candidate **score memo** ([`SearchConfig::score_memo`]) skips
//! re-simulating sources the search has already scored.
//!
//! ## Tracing
//!
//! Both executors emit lifecycle span events to the global
//! [`policysmith_obs`] trace log: `search_round_start` when a round begins
//! generating, `search_round_end` with that round's `CostLedger` deltas
//! when it folds, and `search_done` with the final totals. Emission is
//! outcome-neutral — it writes to a side log and never touches scores, so
//! the pipelined ≡ sequential bit-identity is untouched.

use policysmith_dsl::Mode;
use policysmith_gen::{Exemplar, GenError, Generator, Prompt, TokenLedger};
use policysmith_obs::{emit, TraceKind};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// One case-study instantiation: the Checker + Evaluator pair of §3.
///
/// `check` returns either a ready-to-run artifact or compiler/verifier
/// diagnostics (the "stderr" the repair loop feeds back). `evaluate`
/// returns a score where **higher is better**; it must be pure (same
/// artifact → same score) so searches are reproducible.
pub trait Study: Sync {
    /// Compiled/verified candidate representation. `Sync` because scoring
    /// threads read artifacts in place.
    type Artifact: Send + Sync;
    /// Which template this study searches.
    fn mode(&self) -> Mode;
    /// The Checker: source → artifact or diagnostics.
    fn check(&self, source: &str) -> Result<Self::Artifact, String>;
    /// The Evaluator: artifact → score (higher = better).
    fn evaluate(&self, artifact: &Self::Artifact) -> f64;
}

/// Search-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Generation rounds (paper: 20).
    pub rounds: usize,
    /// Candidates per round (paper: 25).
    pub candidates_per_round: usize,
    /// Exemplars fed back (paper: top 2 across all rounds).
    pub exemplars: usize,
    /// Attempt one stderr repair per rejected candidate?
    pub repair: bool,
    /// Evaluation threads (1 = serial).
    pub threads: usize,
    /// Overlap round N+1's generation + checking with round N's
    /// evaluation. Forces `exemplar_lag >= 1` at run time (the generator
    /// can only be prompted with rounds whose scores exist when generation
    /// starts). Same seed → identical outcome, round order preserved.
    pub pipeline: bool,
    /// Exemplar staleness, in rounds: round N's prompt ranks candidates
    /// from rounds `< N - lag`. 0 is the paper's schedule (all previous
    /// rounds); pipelined execution needs ≥ 1. A sequential run with the
    /// same lag reproduces the pipelined outcome exactly.
    pub exemplar_lag: usize,
    /// Memoize scores across identical sources. Sound because
    /// [`Study::evaluate`] is pure by contract; changes only the cost
    /// ledger (`memo_hits`), never the outcome.
    pub score_memo: bool,
}

impl SearchConfig {
    /// The paper's §4.2.1 cache-study configuration (500 candidates).
    pub fn paper_cache() -> SearchConfig {
        SearchConfig {
            rounds: 20,
            candidates_per_round: 25,
            exemplars: 2,
            repair: true,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            pipeline: false,
            exemplar_lag: 0,
            score_memo: true,
        }
    }

    /// A small configuration for tests and quick demos.
    pub fn quick() -> SearchConfig {
        SearchConfig {
            rounds: 4,
            candidates_per_round: 8,
            exemplars: 2,
            repair: true,
            threads: 2,
            pipeline: false,
            exemplar_lag: 0,
            score_memo: true,
        }
    }

    /// Switch on the pipelined executor (and the ≥1-round exemplar lag it
    /// requires).
    pub fn pipelined(mut self) -> SearchConfig {
        self.pipeline = true;
        self.exemplar_lag = self.exemplar_lag.max(1);
        self
    }
}

/// A scored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    pub source: String,
    pub score: f64,
    pub round: usize,
}

/// Per-round statistics (compile rates feed the §5.0.3 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    pub round: usize,
    pub generated: usize,
    /// Passed the Checker first try.
    pub passed_first: usize,
    /// Passed only after one stderr repair.
    pub passed_after_repair: usize,
    pub best_score_so_far: f64,
    pub round_best: f64,
}

/// Cost accounting in the units of §4.2.6.
///
/// Generation-thread and evaluation-worker time are attributed
/// separately, so the ledger stays honest when the two overlap under the
/// pipelined executor: evaluation CPU is *measured* per candidate, never
/// estimated from wall time × thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostLedger {
    pub tokens: TokenLedger,
    /// Wall-clock seconds on the generation thread: prompting, generation,
    /// checking, repair.
    pub gen_seconds: f64,
    /// Wall-clock seconds with candidate evaluations outstanding. Under
    /// pipelining this overlaps `gen_seconds`; it is how long the search
    /// waited on simulations, not how much work they did.
    pub eval_seconds: f64,
    /// CPU-seconds measured inside [`Study::evaluate`] across all workers.
    pub eval_cpu_seconds: f64,
    pub candidates_evaluated: u64,
    /// Evaluations skipped by the cross-candidate score memo.
    pub memo_hits: u64,
}

impl CostLedger {
    /// Estimated API cost in USD (GPT-4o-mini prices).
    pub fn cost_usd(&self) -> f64 {
        self.tokens.cost_usd()
    }

    /// Total CPU-seconds attributed to the search: generation thread plus
    /// measured evaluation work. No double counting under pipelining —
    /// overlapped wall time appears in at most one term.
    pub fn cpu_seconds(&self) -> f64 {
        self.gen_seconds + self.eval_cpu_seconds
    }
}

/// Everything a finished search returns.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best candidate across all rounds.
    pub best: Scored,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Every scored candidate (for oracle/ablation analyses).
    pub all: Vec<Scored>,
    /// Cost ledger.
    pub cost: CostLedger,
}

/// Why a search attempt produced no outcome. A failed attempt is
/// abandoned whole — partial rounds are discarded so a retry re-runs the
/// search from scratch with the generator's next stream state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The generator's transport failed mid-search (see
    /// [`policysmith_gen::GenError`]).
    Generator(GenError),
    /// Every candidate in every round failed the Checker.
    NoValidCandidate,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Generator(e) => write!(f, "{e}"),
            SearchError::NoValidCandidate => write!(f, "search produced no valid candidate"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Run the search loop (sequential or pipelined per
/// [`SearchConfig::pipeline`]).
///
/// # Panics
/// If no candidate in the entire search passes the Checker (with the
/// default generators this requires a hostile configuration), or if the
/// generator's transport fails. Callers that must survive generator
/// failures — the serving runtime's background re-synthesis — use
/// [`try_run_search`] instead.
pub fn run_search<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
) -> SearchOutcome {
    try_run_search(study, generator, cfg).unwrap_or_else(|e| match e {
        SearchError::NoValidCandidate => panic!("search produced no valid candidate"),
        SearchError::Generator(g) => panic!("generator failed mid-search: {g}"),
    })
}

/// Fallible [`run_search`]: generator transport errors and
/// zero-valid-candidate searches surface as [`SearchError`] instead of
/// panicking, so a retry/backoff layer can wrap the whole attempt.
pub fn try_run_search<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
) -> Result<SearchOutcome, SearchError> {
    if cfg.pipeline {
        run_pipelined(
            study,
            generator,
            &SearchConfig { exemplar_lag: cfg.exemplar_lag.max(1), ..*cfg },
        )
    } else {
        run_sequential(study, generator, cfg)
    }
}

/// A generated-and-checked round, not yet evaluated. `sources[i]` is the
/// accepted source of `artifacts[i]`.
struct CheckedBatch<A> {
    sources: Vec<String>,
    artifacts: Vec<A>,
    generated: usize,
    passed_first: usize,
    passed_after_repair: usize,
    gen_seconds: f64,
}

/// Exemplars for `round`: top-k candidates from rounds `< round - lag`
/// (§4.2.1's all-previous-rounds feedback at lag 0).
fn exemplars_for(all: &[Scored], round: usize, cfg: &SearchConfig) -> Vec<Exemplar> {
    let mut ranked: Vec<&Scored> =
        all.iter().filter(|s| s.round + cfg.exemplar_lag < round).collect();
    ranked.sort_by(|a, b| nan_is_worst(b.score).total_cmp(&nan_is_worst(a.score)));
    ranked
        .iter()
        .take(cfg.exemplars)
        .map(|s| Exemplar { source: s.source.clone(), score: s.score })
        .collect()
}

/// One generation + checking (+ repair) pass — the generator-thread half
/// of a round.
fn generate_and_check<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
    all: &[Scored],
    round: usize,
) -> Result<CheckedBatch<S::Artifact>, GenError> {
    emit(TraceKind::SearchRoundStart { round });
    let t0 = Instant::now();
    let prompt = Prompt::new(study.mode()).with_exemplars(exemplars_for(all, round, cfg));
    let batch = generator.try_generate(&prompt, cfg.candidates_per_round)?;
    let generated = batch.len();
    let mut passed_first = 0;
    let mut passed_after_repair = 0;
    let mut sources = Vec::new();
    let mut artifacts = Vec::new();
    for source in batch {
        match study.check(&source) {
            Ok(art) => {
                passed_first += 1;
                sources.push(source);
                artifacts.push(art);
            }
            Err(stderr) if cfg.repair => {
                if let Some(fixed) = generator.repair(&prompt, &source, &stderr) {
                    if let Ok(art) = study.check(&fixed) {
                        passed_after_repair += 1;
                        sources.push(fixed);
                        artifacts.push(art);
                    }
                }
            }
            Err(_) => {}
        }
    }
    Ok(CheckedBatch {
        sources,
        artifacts,
        generated,
        passed_first,
        passed_after_repair,
        gen_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// How each accepted candidate of a round gets its score: from the memo,
/// or from evaluation slot `uniq[i]` (within-round duplicates share one
/// slot). Built identically by both executors so they stay equivalent.
struct EvalPlan {
    /// Per candidate: `Err(score)` = memoized, `Ok(slot)` = uniq slot.
    slots: Vec<Result<usize, f64>>,
    /// Candidate index evaluated for each uniq slot.
    uniq: Vec<usize>,
}

fn plan_round(sources: &[String], memo: &HashMap<String, f64>, use_memo: bool) -> EvalPlan {
    let mut slots = Vec::with_capacity(sources.len());
    let mut uniq = Vec::new();
    let mut local: HashMap<&str, usize> = HashMap::new();
    for (i, src) in sources.iter().enumerate() {
        if !use_memo {
            slots.push(Ok(uniq.len()));
            uniq.push(i);
        } else if let Some(&score) = memo.get(src) {
            slots.push(Err(score));
        } else if let Some(&slot) = local.get(src.as_str()) {
            slots.push(Ok(slot));
        } else {
            local.insert(src, uniq.len());
            slots.push(Ok(uniq.len()));
            uniq.push(i);
        }
    }
    EvalPlan { slots, uniq }
}

/// Fold one evaluated round into the outcome accumulators. `uniq_scores`
/// is index-aligned with `plan.uniq`.
#[allow(clippy::too_many_arguments)]
fn finish_round(
    round: usize,
    batch: &CheckedBatch<impl Sized>,
    plan: &EvalPlan,
    uniq_scores: &[f64],
    memo: &mut HashMap<String, f64>,
    use_memo: bool,
    all: &mut Vec<Scored>,
    rounds: &mut Vec<RoundStats>,
    cost: &mut CostLedger,
) {
    cost.candidates_evaluated += uniq_scores.len() as u64;
    cost.memo_hits += (batch.sources.len() - uniq_scores.len()) as u64;
    let mut round_best = f64::NEG_INFINITY;
    for (source, slot) in batch.sources.iter().zip(&plan.slots) {
        let score = match *slot {
            Ok(u) => uniq_scores[u],
            Err(memoized) => memoized,
        };
        if use_memo && !memo.contains_key(source) {
            memo.insert(source.clone(), score);
        }
        round_best = round_best.max(score);
        all.push(Scored { source: source.clone(), score, round });
    }
    let best_so_far = all.iter().map(|s| s.score).fold(f64::NEG_INFINITY, f64::max);
    emit(TraceKind::SearchRoundEnd {
        round,
        generated: batch.generated,
        accepted: batch.sources.len(),
        evaluated: uniq_scores.len(),
        memo_hits: batch.sources.len() - uniq_scores.len(),
        gen_seconds: batch.gen_seconds,
        round_best,
        best_so_far,
    });
    rounds.push(RoundStats {
        round,
        generated: batch.generated,
        passed_first: batch.passed_first,
        passed_after_repair: batch.passed_after_repair,
        best_score_so_far: best_so_far,
        round_best,
    });
}

fn seal_outcome(
    generator: &dyn Generator,
    all: Vec<Scored>,
    rounds: Vec<RoundStats>,
    mut cost: CostLedger,
) -> Result<SearchOutcome, SearchError> {
    cost.tokens = *generator.ledger();
    let best = all
        .iter()
        .max_by(|a, b| nan_is_worst(a.score).total_cmp(&nan_is_worst(b.score)))
        .cloned()
        .ok_or(SearchError::NoValidCandidate)?;
    emit(TraceKind::SearchDone {
        rounds: rounds.len(),
        candidates_evaluated: cost.candidates_evaluated as usize,
        memo_hits: cost.memo_hits as usize,
        tokens_in: cost.tokens.input_tokens,
        tokens_out: cost.tokens.output_tokens,
        gen_seconds: cost.gen_seconds,
        eval_seconds: cost.eval_seconds,
        eval_cpu_seconds: cost.eval_cpu_seconds,
        best_score: best.score,
    });
    Ok(SearchOutcome { best, rounds, all, cost })
}

/// The paper's loop: generate → check → evaluate with a barrier per round.
fn run_sequential<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
) -> Result<SearchOutcome, SearchError> {
    let mut all = Vec::new();
    let mut rounds = Vec::new();
    let mut cost = CostLedger::default();
    let mut memo: HashMap<String, f64> = HashMap::new();

    for round in 0..cfg.rounds {
        let batch = generate_and_check(study, generator, cfg, &all, round)
            .map_err(SearchError::Generator)?;
        cost.gen_seconds += batch.gen_seconds;
        let plan = plan_round(&batch.sources, &memo, cfg.score_memo);
        let to_eval: Vec<&S::Artifact> = plan.uniq.iter().map(|&i| &batch.artifacts[i]).collect();
        let t0 = Instant::now();
        let (uniq_scores, cpu) = evaluate_parallel(study, &to_eval, cfg.threads);
        cost.eval_seconds += t0.elapsed().as_secs_f64();
        cost.eval_cpu_seconds += cpu;
        finish_round(
            round,
            &batch,
            &plan,
            &uniq_scores,
            &mut memo,
            cfg.score_memo,
            &mut all,
            &mut rounds,
            &mut cost,
        );
    }
    seal_outcome(generator, all, rounds, cost)
}

/// One round's evaluation state, shared with the workers. Scores land in
/// `results` as indexed lock-free `f64`-bit stores.
struct RoundSlot<A> {
    artifacts: Vec<A>,
    /// Artifact index evaluated by each task (the plan's uniq list).
    tasks: Vec<usize>,
    results: Vec<AtomicU64>,
    pending: AtomicUsize,
}

/// Worker-shared search state for the pipelined executor.
struct PipelineShared<A> {
    slots: Vec<OnceLock<RoundSlot<A>>>,
    queue: Mutex<VecDeque<(usize, usize)>>,
    work_cv: Condvar,
    stop: AtomicBool,
    done_m: Mutex<()>,
    done_cv: Condvar,
    /// Nanoseconds spent inside `Study::evaluate`, summed over workers.
    eval_nanos: AtomicU64,
    /// First payload of a panicking `Study::evaluate`, re-thrown on the
    /// main thread so the pipelined executor fails like the sequential one
    /// instead of deadlocking `wait` on a pending count that never drains.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<A> PipelineShared<A> {
    fn new(rounds: usize) -> Self {
        PipelineShared {
            slots: (0..rounds).map(|_| OnceLock::new()).collect(),
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            done_m: Mutex::new(()),
            done_cv: Condvar::new(),
            eval_nanos: AtomicU64::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Publish a round and enqueue its evaluation tasks.
    fn submit(&self, round: usize, slot: RoundSlot<A>) {
        let n = slot.tasks.len();
        self.slots[round].set(slot).unwrap_or_else(|_| panic!("round {round} submitted twice"));
        let mut q = self.queue.lock().unwrap();
        q.extend((0..n).map(|t| (round, t)));
        drop(q);
        self.work_cv.notify_all();
    }

    /// Block until every task of `round` has a score; return them in task
    /// order. Re-throws an evaluator panic caught on a worker (after
    /// releasing the workers, so the thread scope can join).
    fn wait(&self, round: usize) -> Vec<f64> {
        let slot = self.slots[round].get().expect("waiting on an unsubmitted round");
        let mut guard = self.done_m.lock().unwrap();
        while slot.pending.load(Ordering::Acquire) != 0 {
            guard = self.done_cv.wait(guard).unwrap();
        }
        drop(guard);
        if let Some(payload) = self.panic.lock().unwrap().take() {
            self.shutdown();
            std::panic::resume_unwind(payload);
        }
        slot.results.iter().map(|bits| f64::from_bits(bits.load(Ordering::Relaxed))).collect()
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }

    fn worker<S: Study<Artifact = A>>(&self, study: &S) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if self.stop.load(Ordering::Acquire) {
                        break None;
                    }
                    q = self.work_cv.wait(q).unwrap();
                }
            };
            let Some((round, task_ix)) = task else { return };
            let slot = self.slots[round].get().expect("task for an unsubmitted round");
            let t0 = Instant::now();
            // A panicking evaluator must still decrement `pending`, or the
            // main thread waits forever; catch it here, re-throw in `wait`.
            let score = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                study.evaluate(&slot.artifacts[slot.tasks[task_ix]])
            })) {
                Ok(score) => score,
                Err(payload) => {
                    let mut first = self.panic.lock().unwrap();
                    first.get_or_insert(payload);
                    f64::NEG_INFINITY
                }
            };
            self.eval_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            slot.results[task_ix].store(score.to_bits(), Ordering::Relaxed);
            // Release pairs with the Acquire in `wait`: a pending count of
            // zero implies every score store is visible.
            if slot.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = self.done_m.lock().unwrap();
                self.done_cv.notify_all();
            }
        }
    }
}

/// The pipelined executor: evaluation workers drain a shared queue while
/// the main thread (which owns the generator) generates and checks the
/// next round. With `exemplar_lag ≥ 1` the prompt for round N+1 only needs
/// rounds ≤ N−1, all of which are complete when round N starts evaluating
/// — so speculation never waits and never changes the outcome.
fn run_pipelined<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
) -> Result<SearchOutcome, SearchError> {
    debug_assert!(cfg.exemplar_lag >= 1);
    let mut all = Vec::new();
    let mut rounds = Vec::new();
    let mut cost = CostLedger::default();
    let mut memo: HashMap<String, f64> = HashMap::new();
    let shared = PipelineShared::<S::Artifact>::new(cfg.rounds);
    // A generator error aborts the attempt, but only after the current
    // round's evaluation drains and the workers shut down cleanly.
    let mut gen_err: Option<GenError> = None;

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| shared.worker(study));
        }
        let mut next = if cfg.rounds > 0 {
            match generate_and_check(study, generator, cfg, &all, 0) {
                Ok(b) => Some(b),
                Err(e) => {
                    gen_err = Some(e);
                    None
                }
            }
        } else {
            None
        };
        for round in 0..cfg.rounds {
            let Some(mut batch) = next.take() else { break };
            cost.gen_seconds += batch.gen_seconds;
            let plan = plan_round(&batch.sources, &memo, cfg.score_memo);
            let n_tasks = plan.uniq.len();
            let t0 = Instant::now();
            shared.submit(
                round,
                RoundSlot {
                    artifacts: std::mem::take(&mut batch.artifacts),
                    tasks: plan.uniq.clone(),
                    results: (0..n_tasks).map(|_| AtomicU64::new(0)).collect(),
                    pending: AtomicUsize::new(n_tasks),
                },
            );
            // Speculative generation: round N+1, prompted with the
            // exemplar set frozen at round N's start, runs here while the
            // workers evaluate round N. A transport error here still lets
            // round N's evaluation finish before the attempt aborts.
            if round + 1 < cfg.rounds {
                match generate_and_check(study, generator, cfg, &all, round + 1) {
                    Ok(b) => next = Some(b),
                    Err(e) => {
                        gen_err = Some(e);
                        next = None;
                    }
                }
            }
            let uniq_scores = shared.wait(round);
            cost.eval_seconds += t0.elapsed().as_secs_f64();
            finish_round(
                round,
                &batch,
                &plan,
                &uniq_scores,
                &mut memo,
                cfg.score_memo,
                &mut all,
                &mut rounds,
                &mut cost,
            );
        }
        shared.shutdown();
    });
    if let Some(e) = gen_err {
        return Err(SearchError::Generator(e));
    }
    cost.eval_cpu_seconds = shared.eval_nanos.load(Ordering::Relaxed) as f64 / 1e9;
    seal_outcome(generator, all, rounds, cost)
}

/// Score key for ranking. Evaluators are supposed to return real numbers,
/// but a buggy or adversarial study returning NaN must neither panic the
/// search (the old `partial_cmp(..).unwrap()`) nor win it (`f64::total_cmp`
/// alone orders positive NaN above +inf): NaN ranks below every real score.
fn nan_is_worst(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// Score artifacts on `threads` worker threads (work-stealing via an
/// atomic cursor; results land by index as lock-free `f64`-bit stores, in
/// input order). Returns the scores and the CPU-seconds measured inside
/// [`Study::evaluate`].
fn evaluate_parallel<S: Study>(
    study: &S,
    artifacts: &[&S::Artifact],
    threads: usize,
) -> (Vec<f64>, f64) {
    let n = artifacts.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        let t0 = Instant::now();
        let scores = artifacts.iter().map(|a| study.evaluate(a)).collect();
        return (scores, t0.elapsed().as_secs_f64());
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let nanos = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t0 = Instant::now();
                let score = study.evaluate(artifacts[i]);
                nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                results[i].store(score.to_bits(), Ordering::Relaxed);
            });
        }
    });
    let scores = results.iter().map(|bits| f64::from_bits(bits.load(Ordering::Relaxed))).collect();
    (scores, nanos.load(Ordering::Relaxed) as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{check, parse, Expr};
    use policysmith_gen::{GenConfig, MockLlm};

    /// A toy study with a known optimum: score favors expressions that
    /// reference `obj.count` and are small.
    struct ToyStudy;

    impl Study for ToyStudy {
        type Artifact = Expr;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<Expr, String> {
            let e = parse(source).map_err(|e| e.to_string())?;
            check(&e, Mode::Cache).map_err(|e| e.to_string())?;
            Ok(e)
        }
        fn evaluate(&self, e: &Expr) -> f64 {
            let uses_count =
                e.features().contains(&policysmith_dsl::Feature::ObjCount) as i32 as f64;
            uses_count - e.size() as f64 / 100.0
        }
    }

    #[test]
    fn search_improves_over_rounds() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(11));
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 10, ..SearchConfig::quick() };
        let outcome = run_search(&ToyStudy, &mut llm, &cfg);
        assert_eq!(outcome.rounds.len(), 6);
        // best-so-far is monotone
        for w in outcome.rounds.windows(2) {
            assert!(w[1].best_score_so_far >= w[0].best_score_so_far);
        }
        assert!(outcome.best.score > 0.0, "should find a count-using candidate");
        assert!(outcome.cost.candidates_evaluated > 0);
        assert!(outcome.cost.tokens.input_tokens > 0);
    }

    #[test]
    fn search_is_deterministic() {
        let cfg = SearchConfig { threads: 3, ..SearchConfig::quick() };
        let run = || {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(5));
            run_search(&ToyStudy, &mut llm, &cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best, b.best);
        assert_eq!(a.all.len(), b.all.len());
    }

    #[test]
    fn repair_contributes_candidates() {
        // crank the fault rate so repair visibly matters
        let mut cfg_gen = GenConfig::cache_defaults(13);
        cfg_gen.p_fault = 0.6;
        let mut llm = MockLlm::new(cfg_gen);
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 20, ..SearchConfig::quick() };
        let outcome = run_search(&ToyStudy, &mut llm, &cfg);
        let repaired: usize = outcome.rounds.iter().map(|r| r.passed_after_repair).sum();
        assert!(repaired > 0, "repair path never used");
    }

    /// Evaluator that returns NaN for every candidate that doesn't read
    /// `obj.count` — a stand-in for a buggy metric (0/0, mean of empty).
    struct NanStudy;

    impl Study for NanStudy {
        type Artifact = Expr;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<Expr, String> {
            ToyStudy.check(source)
        }
        fn evaluate(&self, e: &Expr) -> f64 {
            if e.features().contains(&policysmith_dsl::Feature::ObjCount) {
                1.0 - e.size() as f64 / 100.0
            } else {
                f64::NAN
            }
        }
    }

    #[test]
    fn nan_scores_neither_panic_nor_win() {
        // Regression: exemplar ranking and best-candidate selection used
        // `partial_cmp(..).unwrap()`, which panics on NaN.
        let mut llm = MockLlm::new(GenConfig::cache_defaults(17));
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::quick() };
        let outcome = run_search(&NanStudy, &mut llm, &cfg);
        assert!(!outcome.best.score.is_nan(), "NaN must never be selected as best");
        assert!(outcome.best.score > 0.0, "a real-scored candidate must win");
        assert!(
            outcome.all.iter().any(|s| s.score.is_nan()),
            "test should actually exercise NaN scores"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let artifacts: Vec<Expr> =
            ["obj.count", "obj.size + 1", "now"].iter().map(|s| parse(s).unwrap()).collect();
        let refs: Vec<&Expr> = artifacts.iter().collect();
        let (serial, _) = evaluate_parallel(&ToyStudy, &refs, 1);
        let (parallel, _) = evaluate_parallel(&ToyStudy, &refs, 3);
        assert_eq!(serial, parallel);
    }

    /// Same seed, same lag: the pipelined executor must return an outcome
    /// identical to the sequential one — same best, same per-candidate
    /// scores in the same order, same round statistics, same token bill.
    #[test]
    fn pipelined_matches_sequential_exactly() {
        for memo in [true, false] {
            let base = SearchConfig {
                rounds: 6,
                candidates_per_round: 10,
                exemplar_lag: 1,
                score_memo: memo,
                threads: 3,
                ..SearchConfig::quick()
            };
            let run = |cfg: SearchConfig| {
                let mut llm = MockLlm::new(GenConfig::cache_defaults(9));
                run_search(&ToyStudy, &mut llm, &cfg)
            };
            let seq = run(base);
            let pipe = run(SearchConfig { pipeline: true, ..base });
            assert_eq!(seq.best, pipe.best, "memo={memo}");
            assert_eq!(seq.all, pipe.all, "memo={memo}");
            assert_eq!(seq.rounds, pipe.rounds, "memo={memo}");
            assert_eq!(
                seq.cost.tokens.input_tokens, pipe.cost.tokens.input_tokens,
                "prompt streams must match (memo={memo})"
            );
        }
    }

    #[test]
    fn pipelined_search_is_deterministic() {
        let cfg = SearchConfig { threads: 3, ..SearchConfig::quick() }.pipelined();
        let run = || {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(5));
            run_search(&ToyStudy, &mut llm, &cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best, b.best);
        assert_eq!(a.all, b.all);
        assert_eq!(a.rounds, b.rounds);
    }

    /// The memo only skips redundant simulations; it must never change
    /// what the search returns.
    #[test]
    fn score_memo_changes_cost_not_outcome() {
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::quick() };
        let run = |memo: bool| {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(11));
            run_search(&ToyStudy, &mut llm, &SearchConfig { score_memo: memo, ..cfg })
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.best, without.best);
        assert_eq!(with.all, without.all);
        assert!(with.cost.memo_hits > 0, "exemplar-fed rounds should repeat sources");
        assert_eq!(without.cost.memo_hits, 0);
        assert_eq!(
            with.cost.candidates_evaluated + with.cost.memo_hits,
            without.cost.candidates_evaluated
        );
    }

    /// A generator that returns fewer candidates than asked for — the
    /// batch length, not the configured `candidates_per_round`, must land
    /// in `RoundStats.generated` or compile rates are inflated.
    struct StingyGen {
        inner: MockLlm,
        cap: usize,
    }

    impl Generator for StingyGen {
        fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String> {
            self.inner.generate(prompt, n.min(self.cap))
        }
        fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String> {
            self.inner.repair(prompt, source, stderr)
        }
        fn ledger(&self) -> &TokenLedger {
            self.inner.ledger()
        }
    }

    #[test]
    fn round_stats_report_actual_batch_length() {
        let mut gen = StingyGen { inner: MockLlm::new(GenConfig::cache_defaults(3)), cap: 5 };
        let cfg = SearchConfig { rounds: 3, candidates_per_round: 20, ..SearchConfig::quick() };
        let outcome = run_search(&ToyStudy, &mut gen, &cfg);
        for r in &outcome.rounds {
            assert_eq!(r.generated, 5, "generated must be the real batch length");
            assert!(r.passed_first + r.passed_after_repair <= r.generated);
        }
    }

    /// An evaluator that panics must fail a pipelined search the same way
    /// it fails a sequential one — by propagating — never by deadlocking
    /// the round-completion wait.
    struct PanickyStudy;

    impl Study for PanickyStudy {
        type Artifact = Expr;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<Expr, String> {
            ToyStudy.check(source)
        }
        fn evaluate(&self, _e: &Expr) -> f64 {
            panic!("evaluator bug");
        }
    }

    #[test]
    fn pipelined_propagates_evaluator_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(2));
            run_search(&PanickyStudy, &mut llm, &SearchConfig::quick().pipelined())
        });
        let payload = result.expect_err("panic must propagate, not hang");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "evaluator bug");
    }

    /// Fails every `try_generate` call after the first `ok_calls`.
    struct DyingGen {
        inner: MockLlm,
        ok_calls: usize,
        calls: usize,
    }

    impl Generator for DyingGen {
        fn generate(&mut self, prompt: &Prompt, n: usize) -> Vec<String> {
            self.inner.generate(prompt, n)
        }
        fn try_generate(&mut self, prompt: &Prompt, n: usize) -> Result<Vec<String>, GenError> {
            self.calls += 1;
            if self.calls > self.ok_calls {
                Err(GenError::Unavailable("backend died".into()))
            } else {
                Ok(self.inner.generate(prompt, n))
            }
        }
        fn repair(&mut self, prompt: &Prompt, source: &str, stderr: &str) -> Option<String> {
            self.inner.repair(prompt, source, stderr)
        }
        fn ledger(&self) -> &TokenLedger {
            self.inner.ledger()
        }
    }

    #[test]
    fn try_run_search_surfaces_generator_errors_in_both_executors() {
        for pipeline in [false, true] {
            let mut gen = DyingGen {
                inner: MockLlm::new(GenConfig::cache_defaults(6)),
                ok_calls: 2,
                calls: 0,
            };
            let cfg = SearchConfig {
                rounds: 5,
                candidates_per_round: 8,
                pipeline,
                ..SearchConfig::quick()
            };
            let err = try_run_search(&ToyStudy, &mut gen, &cfg)
                .expect_err("a mid-search transport failure must abort the attempt");
            assert_eq!(
                err,
                SearchError::Generator(GenError::Unavailable("backend died".into())),
                "pipeline={pipeline}"
            );
        }
    }

    #[test]
    fn try_run_search_reports_no_valid_candidate_instead_of_panicking() {
        // zero rounds: nothing is ever generated, so nothing can win
        let mut llm = MockLlm::new(GenConfig::cache_defaults(2));
        let cfg = SearchConfig { rounds: 0, ..SearchConfig::quick() };
        assert_eq!(
            try_run_search(&ToyStudy, &mut llm, &cfg).unwrap_err(),
            SearchError::NoValidCandidate
        );
        // and the infallible wrapper preserves the historical panic message
        let payload = std::panic::catch_unwind(|| {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(2));
            run_search(&ToyStudy, &mut llm, &cfg)
        })
        .expect_err("run_search must still panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(msg, "search produced no valid candidate");
    }

    #[test]
    fn try_run_search_matches_run_search_on_a_healthy_generator() {
        let cfg = SearchConfig { rounds: 4, candidates_per_round: 8, ..SearchConfig::quick() };
        let mut a = MockLlm::new(GenConfig::cache_defaults(31));
        let mut b = MockLlm::new(GenConfig::cache_defaults(31));
        let infallible = run_search(&ToyStudy, &mut a, &cfg);
        let fallible = try_run_search(&ToyStudy, &mut b, &cfg).unwrap();
        assert_eq!(infallible.best, fallible.best);
        assert_eq!(infallible.all, fallible.all);
    }

    #[test]
    fn cost_ledger_attributes_threads_separately() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(23));
        let cfg = SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::quick() }
            .pipelined();
        let outcome = run_search(&ToyStudy, &mut llm, &cfg);
        let c = outcome.cost;
        assert!(c.gen_seconds > 0.0, "generation time must be attributed");
        assert!(c.eval_cpu_seconds >= 0.0 && c.eval_cpu_seconds.is_finite());
        assert!((c.cpu_seconds() - (c.gen_seconds + c.eval_cpu_seconds)).abs() < 1e-12);
        assert!(c.candidates_evaluated > 0);
    }
}
