//! The evolutionary search loop (Fig. 1 of the paper).
//!
//! Round structure per §4.2.1: the Generator is prompted with the template
//! plus the **top-k candidates across all previous rounds** as exemplars
//! and produces a batch; the Checker filters (with one stderr-feedback
//! repair attempt per rejected candidate, §4.1.3/§5.0.3); the Evaluator
//! scores survivors — in parallel, since candidate evaluations are
//! independent simulations. The loop is generic over both the study and
//! the generator, so a real LLM client slots in behind
//! [`policysmith_gen::Generator`] unchanged.

use policysmith_dsl::Mode;
use policysmith_gen::{Exemplar, Generator, Prompt, TokenLedger};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One case-study instantiation: the Checker + Evaluator pair of §3.
///
/// `check` returns either a ready-to-run artifact or compiler/verifier
/// diagnostics (the "stderr" the repair loop feeds back). `evaluate`
/// returns a score where **higher is better**; it must be pure (same
/// artifact → same score) so searches are reproducible.
pub trait Study: Sync {
    /// Compiled/verified candidate representation. `Sync` because scoring
    /// threads read artifacts in place.
    type Artifact: Send + Sync;
    /// Which template this study searches.
    fn mode(&self) -> Mode;
    /// The Checker: source → artifact or diagnostics.
    fn check(&self, source: &str) -> Result<Self::Artifact, String>;
    /// The Evaluator: artifact → score (higher = better).
    fn evaluate(&self, artifact: &Self::Artifact) -> f64;
}

/// Search-loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Generation rounds (paper: 20).
    pub rounds: usize,
    /// Candidates per round (paper: 25).
    pub candidates_per_round: usize,
    /// Exemplars fed back (paper: top 2 across all rounds).
    pub exemplars: usize,
    /// Attempt one stderr repair per rejected candidate?
    pub repair: bool,
    /// Evaluation threads (1 = serial).
    pub threads: usize,
}

impl SearchConfig {
    /// The paper's §4.2.1 cache-study configuration (500 candidates).
    pub fn paper_cache() -> SearchConfig {
        SearchConfig {
            rounds: 20,
            candidates_per_round: 25,
            exemplars: 2,
            repair: true,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }

    /// A small configuration for tests and quick demos.
    pub fn quick() -> SearchConfig {
        SearchConfig { rounds: 4, candidates_per_round: 8, exemplars: 2, repair: true, threads: 2 }
    }
}

/// A scored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    pub source: String,
    pub score: f64,
    pub round: usize,
}

/// Per-round statistics (compile rates feed the §5.0.3 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    pub round: usize,
    pub generated: usize,
    /// Passed the Checker first try.
    pub passed_first: usize,
    /// Passed only after one stderr repair.
    pub passed_after_repair: usize,
    pub best_score_so_far: f64,
    pub round_best: f64,
}

/// Cost accounting in the units of §4.2.6.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostLedger {
    pub tokens: TokenLedger,
    /// Wall-clock seconds spent evaluating candidates.
    pub eval_seconds: f64,
    /// CPU-seconds estimate (eval wall time × threads actually used).
    pub cpu_seconds: f64,
    pub candidates_evaluated: u64,
}

impl CostLedger {
    /// Estimated API cost in USD (GPT-4o-mini prices).
    pub fn cost_usd(&self) -> f64 {
        self.tokens.cost_usd()
    }
}

/// Everything a finished search returns.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best candidate across all rounds.
    pub best: Scored,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Every scored candidate (for oracle/ablation analyses).
    pub all: Vec<Scored>,
    /// Cost ledger.
    pub cost: CostLedger,
}

/// Run the search loop.
///
/// # Panics
/// If no candidate in the entire search passes the Checker (with the
/// default generators this requires a hostile configuration).
pub fn run_search<S: Study>(
    study: &S,
    generator: &mut dyn Generator,
    cfg: &SearchConfig,
) -> SearchOutcome {
    let mut all: Vec<Scored> = Vec::new();
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut cost = CostLedger::default();

    for round in 0..cfg.rounds {
        // Exemplars: top-k across all previous rounds (§4.2.1).
        let mut ranked: Vec<&Scored> = all.iter().collect();
        ranked.sort_by(|a, b| nan_is_worst(b.score).total_cmp(&nan_is_worst(a.score)));
        let exemplars: Vec<Exemplar> = ranked
            .iter()
            .take(cfg.exemplars)
            .map(|s| Exemplar { source: s.source.clone(), score: s.score })
            .collect();
        let prompt = Prompt::new(study.mode()).with_exemplars(exemplars);

        let batch = generator.generate(&prompt, cfg.candidates_per_round);
        let mut passed_first = 0;
        let mut passed_after_repair = 0;
        let mut artifacts: Vec<(String, S::Artifact)> = Vec::new();
        for source in batch {
            match study.check(&source) {
                Ok(art) => {
                    passed_first += 1;
                    artifacts.push((source, art));
                }
                Err(stderr) if cfg.repair => {
                    if let Some(fixed) = generator.repair(&prompt, &source, &stderr) {
                        if let Ok(art) = study.check(&fixed) {
                            passed_after_repair += 1;
                            artifacts.push((fixed, art));
                        }
                    }
                }
                Err(_) => {}
            }
        }

        // Parallel evaluation.
        let t0 = Instant::now();
        let scores = evaluate_parallel(study, &artifacts, cfg.threads);
        let dt = t0.elapsed().as_secs_f64();
        cost.eval_seconds += dt;
        cost.cpu_seconds += dt * cfg.threads.min(artifacts.len().max(1)) as f64;
        cost.candidates_evaluated += artifacts.len() as u64;

        let mut round_best = f64::NEG_INFINITY;
        for ((source, _), score) in artifacts.into_iter().zip(scores) {
            round_best = round_best.max(score);
            all.push(Scored { source, score, round });
        }
        let best_so_far = all.iter().map(|s| s.score).fold(f64::NEG_INFINITY, f64::max);
        rounds.push(RoundStats {
            round,
            generated: cfg.candidates_per_round,
            passed_first,
            passed_after_repair,
            best_score_so_far: best_so_far,
            round_best,
        });
    }

    cost.tokens = *generator.ledger();
    let best = all
        .iter()
        .max_by(|a, b| nan_is_worst(a.score).total_cmp(&nan_is_worst(b.score)))
        .cloned()
        .expect("search produced no valid candidate");
    SearchOutcome { best, rounds, all, cost }
}

/// Score key for ranking. Evaluators are supposed to return real numbers,
/// but a buggy or adversarial study returning NaN must neither panic the
/// search (the old `partial_cmp(..).unwrap()`) nor win it (`f64::total_cmp`
/// alone orders positive NaN above +inf): NaN ranks below every real score.
fn nan_is_worst(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// Score artifacts on `threads` worker threads (work-stealing via an atomic
/// cursor; order of results matches input order).
fn evaluate_parallel<S: Study>(
    study: &S,
    artifacts: &[(String, S::Artifact)],
    threads: usize,
) -> Vec<f64> {
    let n = artifacts.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return artifacts.iter().map(|(_, a)| study.evaluate(a)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(vec![f64::NEG_INFINITY; n]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let score = study.evaluate(&artifacts[i].1);
                results.lock().unwrap()[i] = score;
            });
        }
    });
    results.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use policysmith_dsl::{check, parse, Expr};
    use policysmith_gen::{GenConfig, MockLlm};

    /// A toy study with a known optimum: score favors expressions that
    /// reference `obj.count` and are small.
    struct ToyStudy;

    impl Study for ToyStudy {
        type Artifact = Expr;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<Expr, String> {
            let e = parse(source).map_err(|e| e.to_string())?;
            check(&e, Mode::Cache).map_err(|e| e.to_string())?;
            Ok(e)
        }
        fn evaluate(&self, e: &Expr) -> f64 {
            let uses_count =
                e.features().contains(&policysmith_dsl::Feature::ObjCount) as i32 as f64;
            uses_count - e.size() as f64 / 100.0
        }
    }

    #[test]
    fn search_improves_over_rounds() {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(11));
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 10, ..SearchConfig::quick() };
        let outcome = run_search(&ToyStudy, &mut llm, &cfg);
        assert_eq!(outcome.rounds.len(), 6);
        // best-so-far is monotone
        for w in outcome.rounds.windows(2) {
            assert!(w[1].best_score_so_far >= w[0].best_score_so_far);
        }
        assert!(outcome.best.score > 0.0, "should find a count-using candidate");
        assert!(outcome.cost.candidates_evaluated > 0);
        assert!(outcome.cost.tokens.input_tokens > 0);
    }

    #[test]
    fn search_is_deterministic() {
        let cfg = SearchConfig { threads: 3, ..SearchConfig::quick() };
        let run = || {
            let mut llm = MockLlm::new(GenConfig::cache_defaults(5));
            run_search(&ToyStudy, &mut llm, &cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best, b.best);
        assert_eq!(a.all.len(), b.all.len());
    }

    #[test]
    fn repair_contributes_candidates() {
        // crank the fault rate so repair visibly matters
        let mut cfg_gen = GenConfig::cache_defaults(13);
        cfg_gen.p_fault = 0.6;
        let mut llm = MockLlm::new(cfg_gen);
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 20, ..SearchConfig::quick() };
        let outcome = run_search(&ToyStudy, &mut llm, &cfg);
        let repaired: usize = outcome.rounds.iter().map(|r| r.passed_after_repair).sum();
        assert!(repaired > 0, "repair path never used");
    }

    /// Evaluator that returns NaN for every candidate that doesn't read
    /// `obj.count` — a stand-in for a buggy metric (0/0, mean of empty).
    struct NanStudy;

    impl Study for NanStudy {
        type Artifact = Expr;
        fn mode(&self) -> Mode {
            Mode::Cache
        }
        fn check(&self, source: &str) -> Result<Expr, String> {
            ToyStudy.check(source)
        }
        fn evaluate(&self, e: &Expr) -> f64 {
            if e.features().contains(&policysmith_dsl::Feature::ObjCount) {
                1.0 - e.size() as f64 / 100.0
            } else {
                f64::NAN
            }
        }
    }

    #[test]
    fn nan_scores_neither_panic_nor_win() {
        // Regression: exemplar ranking and best-candidate selection used
        // `partial_cmp(..).unwrap()`, which panics on NaN.
        let mut llm = MockLlm::new(GenConfig::cache_defaults(17));
        let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::quick() };
        let outcome = run_search(&NanStudy, &mut llm, &cfg);
        assert!(!outcome.best.score.is_nan(), "NaN must never be selected as best");
        assert!(outcome.best.score > 0.0, "a real-scored candidate must win");
        assert!(
            outcome.all.iter().any(|s| s.score.is_nan()),
            "test should actually exercise NaN scores"
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let artifacts: Vec<(String, Expr)> = ["obj.count", "obj.size + 1", "now"]
            .iter()
            .map(|s| (s.to_string(), parse(s).unwrap()))
            .collect();
        let serial = evaluate_parallel(&ToyStudy, &artifacts, 1);
        let parallel = evaluate_parallel(&ToyStudy, &artifacts, 3);
        assert_eq!(serial, parallel);
    }
}
