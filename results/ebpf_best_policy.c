/* SPDX-License-Identifier: GPL-2.0 */
/*
 * policysmith_best — congestion-control policy emitted by policysmith-ebpf.
 *
 * Generated from verified kbpf bytecode; do not edit by hand.
 * Plain `cc -c` build-checks the policy function; define
 * POLICYSMITH_KERN for the BPF struct_ops scaffolding
 * (clang -O2 -target bpf against vmlinux.h).
 */

#ifdef POLICYSMITH_KERN
#include "vmlinux.h"
#include <bpf/bpf_helpers.h>
#include <bpf/bpf_tracing.h>
#else
typedef long long s64;
typedef unsigned long long u64;
#endif

/* context ABI: one s64 per slot, in first-use order */
struct psm_ctx {
	s64 f[8];
	/* f[0] = srtt in [1, 4294967296] */
	/* f[1] = min_rtt in [1, 4294967296] */
	/* f[2] = cwnd in [1, 16777216] */
	/* f[3] = ssthresh in [1, 16777216] */
	/* f[4] = loss in [0, 1] */
	/* f[5] = acked in [0, 4294967296] */
	/* f[6] = mss in [1, 65535] */
	/* f[7] = delivery_rate in [0, 1125899906842624] */
};

/* kbpf shift semantics: amount clamps to [0, 63] */
static inline s64 psm_shl(s64 v, s64 a)
{
	if (a < 0) a = 0;
	if (a > 63) a = 63;
	return (s64)((u64)v << (u64)a);
}

static inline s64 psm_shr(s64 v, s64 a)
{
	if (a < 0) a = 0;
	if (a > 63) a = 63;
	return v >> a;
}

/* guarded division: the zero and MIN/-1 branches are unreachable
 * for verified policies but keep the C free of undefined behavior */
static inline s64 psm_div(s64 a, s64 b)
{
	if (b == 0) return 0;
	if (b == -1) return (s64)(0ULL - (u64)a);
	return a / b;
}

static inline s64 psm_rem(s64 a, s64 b)
{
	if (b == 0 || b == -1) return 0;
	return a % b;
}

/* the policy: a direct transliteration of the verified bytecode */
static s64 policysmith_best_policy(const struct psm_ctx *c, s64 *m)
{
	s64 r0 = 0, r1 = 0, r2 = 0, r3 = 0;
	(void)m;

	r1 = c->f[0];
	r2 = c->f[1];
	r3 = 7052LL;
	r2 = (s64)((u64)r2 + (u64)(r3));
	if (r1 > r2) goto L7;
	r1 = 0LL;
	goto L8;
L7:
	r1 = 1LL;
L8:
	if (r1 == 0LL) goto L73;
	r1 = c->f[2];
	r2 = c->f[3];
	if (r1 < r2) goto L14;
	r1 = 0LL;
	goto L15;
L14:
	r1 = 1LL;
L15:
	if (r1 == 0LL) goto L56;
	r1 = c->f[2];
	r2 = c->f[3];
	if (r1 < r2) goto L21;
	r1 = 0LL;
	goto L22;
L21:
	r1 = 1LL;
L22:
	if (r1 == 0LL) goto L39;
	r1 = c->f[4];
	if (r1 == 0LL) goto L30;
	r1 = c->f[4];
	r2 = 1LL;
	if (r1 >= r2) goto L29;
	r1 = r2;
L29:
	goto L38;
L30:
	r1 = c->f[2];
	r2 = c->f[5];
	r3 = c->f[6];
	r2 = psm_div(r2, r3);
	r3 = 1LL;
	if (r2 >= r3) goto L37;
	r2 = r3;
L37:
	r1 = (s64)((u64)r1 + (u64)(r2));
L38:
	goto L55;
L39:
	r1 = c->f[7];
	r2 = 8LL;
	r1 = psm_div(r1, r2);
	r2 = 1000000LL;
	r1 = psm_div(r1, r2);
	r2 = c->f[1];
	r3 = 12LL;
	r2 = (s64)((u64)r2 * (u64)(r3));
	r1 = (s64)((u64)r1 * (u64)(r2));
	r2 = c->f[6];
	r3 = 10LL;
	r2 = (s64)((u64)r2 * (u64)(r3));
	r1 = psm_div(r1, r2);
	r2 = 4LL;
	if (r1 >= r2) goto L55;
	r1 = r2;
L55:
	goto L72;
L56:
	r1 = c->f[7];
	r2 = 8LL;
	r1 = psm_div(r1, r2);
	r2 = 1000000LL;
	r1 = psm_div(r1, r2);
	r2 = c->f[1];
	r3 = 12LL;
	r2 = (s64)((u64)r2 * (u64)(r3));
	r1 = (s64)((u64)r1 * (u64)(r2));
	r2 = c->f[6];
	r3 = 10LL;
	r2 = (s64)((u64)r2 * (u64)(r3));
	r1 = psm_div(r1, r2);
	r2 = 4LL;
	if (r1 >= r2) goto L72;
	r1 = r2;
L72:
	goto L92;
L73:
	r1 = c->f[0];
	r2 = c->f[1];
	r3 = 24288LL;
	r2 = (s64)((u64)r2 + (u64)(r3));
	if (r1 > r2) goto L80;
	r1 = 0LL;
	goto L81;
L80:
	r1 = 1LL;
L81:
	if (r1 == 0LL) goto L89;
	r1 = c->f[2];
	r2 = 1LL;
	r1 = (s64)((u64)r1 - (u64)(r2));
	r2 = 2LL;
	if (r1 >= r2) goto L88;
	r1 = r2;
L88:
	goto L92;
L89:
	r1 = c->f[2];
	r2 = 1LL;
	r1 = (s64)((u64)r1 + (u64)(r2));
L92:
	r0 = r1;
	return r0;
}

#ifndef POLICYSMITH_KERN
/* userspace entry point: lets a plain `cc -c` build-check reference
 * the policy and gives host-side tests a callable symbol */
s64 policysmith_best_decide(const struct psm_ctx *c, s64 *m)
{
	return policysmith_best_policy(c, m);
}
#endif /* !POLICYSMITH_KERN */

#ifdef POLICYSMITH_KERN

char _license[] SEC("license") = "GPL";

/* per-socket scratch: kbpf map slots + history features */
struct psm_state {
	s64 m[64];
};

struct {
	__uint(type, BPF_MAP_TYPE_SK_STORAGE);
	__uint(map_flags, BPF_F_NO_PREALLOC);
	__type(key, int);
	__type(value, struct psm_state);
} psm_sk_state SEC(".maps");

static void psm_fill_ctx(struct psm_ctx *c, const struct tcp_sock *tp,
			 struct psm_state *st, __u32 acked, s64 loss)
{
	c->f[0] = (s64)(tp->srtt_us >> 3);
	c->f[1] = (s64)minmax_get(&tp->rtt_min);
	c->f[2] = (s64)tp->snd_cwnd;
	c->f[3] = (s64)tp->snd_ssthresh;
	c->f[4] = loss;
	c->f[5] = (s64)acked * (s64)tp->mss_cache;
	c->f[6] = (s64)tp->mss_cache;
	c->f[7] = (s64)tp->rate_delivered;
}

static s64 psm_decide(struct sock *sk, __u32 acked, s64 loss)
{
	struct tcp_sock *tp = (struct tcp_sock *)sk;
	struct psm_state *st;
	struct psm_ctx c = {};
	s64 cwnd;

	st = bpf_sk_storage_get(&psm_sk_state, sk, 0,
				BPF_SK_STORAGE_GET_F_CREATE);
	if (!st)
		return (s64)tp->snd_cwnd;
	psm_fill_ctx(&c, tp, st, acked, loss);
	cwnd = policysmith_best_policy(&c, st->m);
	/* host-side clamp, mirrored in the kernel */
	if (cwnd < 2) cwnd = 2;
	if (cwnd > (1 << 20)) cwnd = 1 << 20;
	return cwnd;
}

SEC("struct_ops")
void BPF_PROG(policysmith_best_cong_avoid, struct sock *sk, __u32 ack, __u32 acked)
{
	struct tcp_sock *tp = (struct tcp_sock *)sk;

	tp->snd_cwnd = (__u32)psm_decide(sk, acked, 0);
}

SEC("struct_ops")
__u32 BPF_PROG(policysmith_best_ssthresh, struct sock *sk)
{
	return (__u32)psm_decide(sk, 0, 1);
}

SEC("struct_ops")
__u32 BPF_PROG(policysmith_best_undo_cwnd, struct sock *sk)
{
	struct tcp_sock *tp = (struct tcp_sock *)sk;

	return tp->snd_cwnd;
}

SEC(".struct_ops")
struct tcp_congestion_ops policysmith_best_ops = {
	.cong_avoid	= (void *)policysmith_best_cong_avoid,
	.ssthresh	= (void *)policysmith_best_ssthresh,
	.undo_cwnd	= (void *)policysmith_best_undo_cwnd,
	.name		= "policysmith_bes",
};

#endif /* POLICYSMITH_KERN */
