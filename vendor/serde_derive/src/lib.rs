//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Hand-rolled token scanning (no `syn`/`quote` in an offline container):
//! supports exactly the shape the workspace derives — non-generic structs
//! with named fields — and emits a `serde::Serialize` impl building a JSON
//! object in field order. Anything else is a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name> { ... }`, skipping attributes and visibility.
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("derive(Serialize): expected a struct name".into()),
                }
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        return Err("derive(Serialize): generic structs are not supported by the \
                             vendored serde shim"
                            .into());
                    }
                    _ => {
                        return Err(
                            "derive(Serialize): only structs with named fields are supported \
                             by the vendored serde shim"
                                .into(),
                        );
                    }
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(
                    "derive(Serialize): only structs are supported by the vendored serde shim"
                        .into(),
                );
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "derive(Serialize): no struct found".to_string())?;
    let body = body.ok_or_else(|| "derive(Serialize): no struct body found".to_string())?;

    let fields = field_names(body)?;
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(fields)\n\
             }}\n\
         }}\n"
    );
    out.parse().map_err(|e| format!("derive(Serialize): emitted invalid code: {e:?}"))
}

/// Extract field names from a named-field struct body: each field is the
/// identifier directly before a top-level `:` (angle-bracket depth 0,
/// skipping attributes and visibility).
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut expecting_field = true; // at start / after a top-level comma
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && expecting_field => {
                    if let Some(f) = last_ident.take() {
                        fields.push(f);
                    }
                    expecting_field = false;
                }
                ',' if angle_depth == 0 => {
                    expecting_field = true;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if expecting_field => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            // Attribute brackets `#[..]`, paren groups in visibility
            // `pub(crate)` or types: nothing to track at top level.
            _ => {}
        }
    }
    if fields.is_empty() {
        return Err("derive(Serialize): struct has no named fields".into());
    }
    Ok(fields)
}
