//! Offline, dependency-free stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, and the only consumer in
//! this workspace is `policysmith-bench` writing JSON result artifacts. So
//! instead of serde's generic serializer architecture, [`Serialize`] here
//! converts directly into a JSON [`Value`] tree that the vendored
//! `serde_json` renders. `#[derive(Serialize)]` (from the vendored
//! `serde_derive`) covers structs with named fields — the only shape the
//! workspace derives.

pub use serde_derive::Serialize;

/// A JSON value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so
/// serialized artifacts keep the field order of the Rust struct.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`, like JavaScript. Integers up to
    /// 2^53 round-trip exactly; the token/cost ledgers stay far below.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Conversion into a JSON [`Value`] (this shim's whole serialization
/// contract).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident / $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for output determinism; HashMap iteration order is not.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u64.to_value(), Value::Number(3.0));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(
            vec![1i64, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(
            ("a".to_string(), 0.5f64).to_value(),
            Value::Array(vec![Value::String("a".into()), Value::Number(0.5)])
        );
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn maps_become_objects() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k", 1usize);
        assert_eq!(m.to_value(), Value::Object(vec![("k".into(), Value::Number(1.0))]));
    }
}
