//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive`, range and tuple
//! strategies, `collection::vec`, `sample::select`, `prop_oneof!`, and the
//! `proptest!` test-harness macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its assertion message (which
//!   the tests already format with full context) but is not minimized.
//! * **Deterministic seeding.** Case `i` of a test derives its RNG from a
//!   fixed seed and `i`, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hard failure: the property does not hold.
    Fail(String),
    /// Soft rejection (`prop_assume!`): skip this input.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A soft rejection carrying `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (sampling-only subset of proptest's trait).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `levels` of nesting on top of `self` as
    /// the leaf strategy. `desired_size` / `expected_branch` are accepted
    /// for API compatibility; depth alone bounds generation here.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..levels {
            // At each level, bias toward the leaf so expected sizes stay
            // moderate while deep nesting remains reachable.
            let deeper = branch(current).boxed();
            current = Union { arms: vec![leaf.clone(), deeper.clone(), deeper] }.boxed();
        }
        current
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Reference-counted type-erased strategy; clones share the generator.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice between alternative strategies (backs `prop_oneof!`).
pub struct Union<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$ix.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

/// Element-wise sampling of a vector of strategies (proptest impls this
/// for `Vec<S>` too; used for "one value per feature" environments).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// `any::<T>()` support for the primitive types the tests draw.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Vec of `len` in the given range, elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, min: len.start, max_exclusive: len.end }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Uniform choice from a fixed, non-empty set.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }

    /// `proptest::sample::select(items)`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty set");
        Select { items }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, Union,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derive the per-test base seed from its fully qualified name so sibling
/// tests explore different streams but each test is stable across runs.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fresh deterministic RNG for case `case` of the named test.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Equality assertion with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` — {} ({}:{})",
                a, b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Inequality assertion with optional context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})", a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` — {} ({}:{})",
                a, b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// The test-harness macro: expands each `fn name(pat in strategy, ..)` to a
/// `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..cfg.cases {
                let mut rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, msg);
                    }
                }
            }
            assert!(
                rejected < cfg.cases,
                "proptest `{}`: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::case_rng("bounds", 0);
        for _ in 0..1_000 {
            let v = Strategy::sample(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
            let (a, b) = Strategy::sample(&((0u64..5), (1u32..3)), &mut rng);
            assert!(a < 5 && (1..3).contains(&b));
            let xs = Strategy::sample(&crate::collection::vec(0u8..10, 1..4), &mut rng);
            assert!(!xs.is_empty() && xs.len() < 4 && xs.iter().all(|&x| x < 10));
            let s = Strategy::sample(&crate::sample::select(vec!["a", "b"]), &mut rng);
            assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::case_rng("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_generates_varied_depths() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::case_rng("rec", 0);
        let depths: Vec<usize> =
            (0..200).map(|_| depth(&Strategy::sample(&strat, &mut rng))).collect();
        assert!(depths.contains(&1), "leaves must occur");
        assert!(depths.iter().any(|&d| d >= 3), "nesting must occur");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_binds(x in 0u32..100, ys in crate::collection::vec(0i64..5, 1..4)) {
            prop_assume!(x != 1_000); // never rejects
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(ys.len(), 0);
        }
    }
}
