//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the slice of proptest this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive`, range and tuple
//! strategies, `collection::vec`, `sample::select`, `prop_oneof!`, and the
//! `proptest!` test-harness macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **Greedy shrinking through adapters.** Sampling produces a
//!   [`Shrinkable`] — the value plus a lazy tree of simpler candidates —
//!   and on failure the harness greedily walks to the first candidate that
//!   still fails, repeating until a local minimum (or a fixed budget).
//!   Shrinking threads through `prop_map` (candidates of the *input* are
//!   re-mapped), tuples and `collection::vec` (length halving, drop-one,
//!   element-wise), and `prop_oneof` / `prop_recursive` / `boxed`
//!   (delegation to the sampled arm) — so composite values like generated
//!   `Expr` trees do minimize. Remaining gap vs real proptest:
//!   `sample::select`, `any::<T>()` and float ranges are shrink leaves,
//!   and the greedy first-failing-candidate walk is weaker than
//!   proptest's simplify/complicate binary search.
//! * **Deterministic seeding.** Case `i` of a test derives its RNG from a
//!   fixed seed and `i`, so failures reproduce exactly across runs (and
//!   every shrink candidate is re-run through the same test body, so the
//!   minimized counterexample is a true failure, never an artifact).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hard failure: the property does not hold.
    Fail(String),
    /// Soft rejection (`prop_assume!`): skip this input.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A soft rejection carrying `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A sampled value bundled with a lazy tree of simpler candidates.
///
/// This is the shim's lightweight stand-in for proptest's `ValueTree`:
/// strategies build it at sampling time, so adapters like [`Map`] shrink by
/// shrinking the value they *sampled from* and re-applying their closure —
/// no inversion needed. Candidate lists are produced on demand (the tree is
/// never materialized) and ordered simplest-first.
pub struct Shrinkable<T> {
    /// The sampled (or shrunk-to) value.
    pub value: T,
    cands: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable { value: self.value.clone(), cands: Rc::clone(&self.cands) }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// A value with no simpler candidates (the shrink leaf).
    pub fn leaf(value: T) -> Self {
        Shrinkable { value, cands: Rc::new(Vec::new) }
    }

    /// A value with the given lazy candidate producer.
    pub fn new(value: T, cands: Rc<dyn Fn() -> Vec<Shrinkable<T>>>) -> Self {
        Shrinkable { value, cands }
    }

    /// Simpler candidates of this value, simplest first.
    pub fn candidates(&self) -> Vec<Shrinkable<T>> {
        (self.cands)()
    }
}

/// Shrinkable scalar over a re-applicable ladder: each candidate value `c`
/// of `ladder(lo, v)` gets its own ladder rooted at `c`, so greedy descent
/// can keep halving toward `lo`.
pub fn ladder_shrinkable<T: Copy + 'static>(
    lo: T,
    v: T,
    ladder: fn(T, T) -> Vec<T>,
) -> Shrinkable<T> {
    Shrinkable {
        value: v,
        cands: Rc::new(move || {
            ladder(lo, v).into_iter().map(|c| ladder_shrinkable(lo, c, ladder)).collect()
        }),
    }
}

/// Shrinkable of a mapped value: candidates of the *input* shrinkable,
/// each re-run through `f`. This is how shrinking traverses `prop_map`.
pub fn map_shrinkable<T: Clone + 'static, U: 'static>(
    inner: Shrinkable<T>,
    f: Rc<dyn Fn(T) -> U>,
) -> Shrinkable<U> {
    let value = f(inner.value.clone());
    let f2 = Rc::clone(&f);
    Shrinkable {
        value,
        cands: Rc::new(move || {
            inner.candidates().into_iter().map(|c| map_shrinkable(c, Rc::clone(&f2))).collect()
        }),
    }
}

/// Shrinkable vector from per-element shrinkables: length halves toward
/// `min_len`, then drops one, then elements shrink in place — mirroring
/// [`collection::vec`]'s eager `shrink` order.
pub fn vec_shrinkable<T: Clone + 'static>(
    parts: Vec<Shrinkable<T>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = parts.iter().map(|p| p.value.clone()).collect();
    Shrinkable {
        value,
        cands: Rc::new(move || {
            let mut out = Vec::new();
            if parts.len() > min_len {
                let half = min_len.max(parts.len() / 2);
                if half < parts.len() {
                    out.push(vec_shrinkable(parts[..half].to_vec(), min_len));
                }
                out.push(vec_shrinkable(parts[..parts.len() - 1].to_vec(), min_len));
            }
            for (i, p) in parts.iter().enumerate() {
                for cand in p.candidates() {
                    let mut np = parts.clone();
                    np[i] = cand;
                    out.push(vec_shrinkable(np, min_len));
                }
            }
            out
        }),
    }
}

/// A generator of random values (sampling-only subset of proptest's trait).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `v`, simplest first — the legacy eager
    /// API, kept for callers that shrink values they did not sample (it
    /// cannot traverse [`Map`]). The harness itself uses
    /// [`Strategy::sample_shrinkable`].
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let _ = v;
        Vec::new()
    }

    /// Draw one value together with its lazy shrink tree. The default is a
    /// shrink leaf; see the crate docs for which strategies thread
    /// candidates through.
    fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value>
    where
        Self::Value: Clone + 'static,
    {
        Shrinkable::leaf(self.sample(rng))
    }

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `levels` of nesting on top of `self` as
    /// the leaf strategy. `desired_size` / `expected_branch` are accepted
    /// for API compatibility; depth alone bounds generation here.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..levels {
            // At each level, bias toward the leaf so expected sizes stay
            // moderate while deep nesting remains reachable.
            let deeper = branch(current).boxed();
            current = Union { arms: vec![leaf.clone(), deeper.clone(), deeper] }.boxed();
        }
        current
    }
}

/// [`Strategy::prop_map`] adapter. The closure is reference-counted so
/// each shrink candidate of the *input* can be re-mapped lazily.
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Strategy, U: 'static, F: Fn(S::Value) -> U + 'static> Strategy for Map<S, F>
where
    S::Value: Clone + 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
    fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<U>
    where
        U: Clone + 'static,
    {
        let inner = self.inner.sample_shrinkable(rng);
        map_shrinkable(inner, Rc::clone(&self.f) as Rc<dyn Fn(S::Value) -> U>)
    }
}

/// Reference-counted type-erased strategy; clones share the generator.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        self.0.shrink(v)
    }
    fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T>
    where
        T: Clone + 'static,
    {
        self.0.sample_shrinkable(rng)
    }
}

/// Uniform choice between alternative strategies (backs `prop_oneof!`).
pub struct Union<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].sample(rng)
    }
    fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<T>
    where
        T: Clone + 'static,
    {
        // delegate to the sampled arm; its shrinks stay within that arm
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let ix = rng.random_range(0..self.arms.len());
        self.arms[ix].sample_shrinkable(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Integer shrink ladder: the range's lower bound first (the simplest
/// value), then the midpoint between it and the failing value (128-bit
/// arithmetic, so extreme ranges cannot overflow).
macro_rules! int_shrink {
    ($t:ty, $lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            let mid = ((lo as i128 + v as i128) / 2) as $t;
            if mid != lo && mid != v {
                out.push(mid);
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink!($t, self.start, *v)
            }
            fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<$t> {
                ladder_shrinkable(self.start, self.sample(rng), |lo, v| int_shrink!($t, lo, v))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink!($t, *self.start(), *v)
            }
            fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<$t> {
                ladder_shrinkable(*self.start(), self.sample(rng), |lo, v| int_shrink!($t, lo, v))
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// f64 ranges sample but do not shrink (no meaningful "simplest" ladder
// without proptest's value trees).
impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}
impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $alt:ident / $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone + 'static),+
        {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$ix.sample(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                // one component at a time, the others held fixed
                let mut out = Vec::new();
                $(
                    for cand in self.$ix.shrink(&v.$ix) {
                        let mut nv = v.clone();
                        nv.$ix = cand;
                        out.push(nv);
                    }
                )+
                out
            }
            fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Self::Value> {
                // one shrinkable per component; candidates substitute one
                // component at a time (same order as `shrink`)
                fn build<$($alt: Clone + 'static),+>(
                    parts: ($(Shrinkable<$alt>,)+),
                ) -> Shrinkable<($($alt,)+)> {
                    let value = ($(parts.$ix.value.clone(),)+);
                    Shrinkable {
                        value,
                        cands: Rc::new(move || {
                            let mut out = Vec::new();
                            $(
                                for cand in parts.$ix.candidates() {
                                    let mut np = parts.clone();
                                    np.$ix = cand;
                                    out.push(build(np));
                                }
                            )+
                            out
                        }),
                    }
                }
                build(($(self.$ix.sample_shrinkable(rng),)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / A2 / 0)
    (A / A2 / 0, B / B2 / 1)
    (A / A2 / 0, B / B2 / 1, C / C2 / 2)
    (A / A2 / 0, B / B2 / 1, C / C2 / 2, D / D2 / 3)
    (A / A2 / 0, B / B2 / 1, C / C2 / 2, D / D2 / 3, E / E2 / 4)
}

/// Element-wise sampling of a vector of strategies (proptest impls this
/// for `Vec<S>` too; used for "one value per feature" environments).
impl<S: Strategy> Strategy for Vec<S>
where
    S::Value: Clone + 'static,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        // fixed length (one slot per strategy): shrink elements in place
        let mut out = Vec::new();
        for (i, s) in self.iter().enumerate() {
            for cand in s.shrink(&v[i]) {
                let mut nv = v.clone();
                nv[i] = cand;
                out.push(nv);
            }
        }
        out
    }
    fn sample_shrinkable(&self, rng: &mut StdRng) -> Shrinkable<Vec<S::Value>> {
        let parts: Vec<_> = self.iter().map(|s| s.sample_shrinkable(rng)).collect();
        let min = parts.len(); // fixed length: never drop slots
        vec_shrinkable(parts, min)
    }
}

/// `any::<T>()` support for the primitive types the tests draw.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Vec of `len` in the given range, elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + 'static,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn sample_shrinkable(&self, rng: &mut StdRng) -> super::Shrinkable<Vec<S::Value>> {
            let len = rng.random_range(self.min..self.max_exclusive);
            let parts = (0..len).map(|_| self.element.sample_shrinkable(rng)).collect();
            super::vec_shrinkable(parts, self.min)
        }
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // shrink the length first (halve toward min, then drop one)…
            if v.len() > self.min {
                let half = self.min.max(v.len() / 2);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                }
                out.push(v[..v.len() - 1].to_vec());
            }
            // …then elements in place
            for (i, x) in v.iter().enumerate() {
                for cand in self.element.shrink(x) {
                    let mut nv = v.clone();
                    nv[i] = cand;
                    out.push(nv);
                }
            }
            out
        }
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, min: len.start, max_exclusive: len.end }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Uniform choice from a fixed, non-empty set.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }

    /// `proptest::sample::select(items)`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty set");
        Select { items }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Shrinkable, Strategy, TestCaseError,
        TestCaseResult, Union,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derive the per-test base seed from its fully qualified name so sibling
/// tests explore different streams but each test is stable across runs.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fresh deterministic RNG for case `case` of the named test.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Total shrink candidates tried per failure, across all rounds.
const SHRINK_BUDGET: usize = 512;

/// The harness body behind the `proptest!` macro: run `cfg.cases`
/// deterministic cases of `run` over values drawn from `strat`, minimizing
/// the first failure via [`shrink_shrinkable`] before panicking.
pub fn run_proptest<S: Strategy>(
    cfg: ProptestConfig,
    test_name: &str,
    strat: &S,
    mut run: impl FnMut(&S::Value) -> TestCaseResult,
) where
    S::Value: Clone + 'static,
{
    let mut rejected: u32 = 0;
    for case in 0..cfg.cases {
        let mut rng = case_rng(test_name, case);
        let vals = strat.sample_shrinkable(&mut rng);
        match run(&vals.value) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                let (_min, msg, steps) = shrink_shrinkable(vals, msg, &mut run);
                panic!(
                    "proptest `{}` failed at case {}/{} (after {} shrink steps): {}",
                    test_name, case, cfg.cases, steps, msg
                );
            }
        }
    }
    assert!(
        rejected < cfg.cases,
        "proptest `{test_name}`: every case was rejected by prop_assume!"
    );
}

/// Greedily minimize a failing [`Shrinkable`]: try each lazy candidate of
/// the current counterexample, move to the first one that still fails,
/// repeat until no candidate fails (or the budget runs out). Because
/// candidates carry their own shrink trees, this walk traverses `prop_map`
/// and every other combinator. Returns the minimized value, its failure
/// message, and the number of successful shrink steps.
pub fn shrink_shrinkable<T: Clone + 'static>(
    mut current: Shrinkable<T>,
    mut message: String,
    test: &mut dyn FnMut(&T) -> TestCaseResult,
) -> (T, String, u32) {
    let mut steps = 0u32;
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in current.candidates() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(TestCaseError::Fail(m)) = test(&cand.value) {
                current = cand;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: local minimum reached
    }
    (current.value, message, steps)
}

/// Greedily minimize a failing input: try each [`Strategy::shrink`]
/// candidate of the current counterexample, move to the first one that
/// still fails, repeat until no candidate fails (or the budget runs out).
/// Returns the minimized value, its failure message, and the number of
/// successful shrink steps.
pub fn shrink_failure<S: Strategy + ?Sized>(
    strat: &S,
    mut current: S::Value,
    mut message: String,
    test: &mut dyn FnMut(&S::Value) -> TestCaseResult,
) -> (S::Value, String, u32) {
    let mut steps = 0u32;
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in strat.shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(TestCaseError::Fail(m)) = test(&cand) {
                current = cand;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: local minimum reached
    }
    (current, message, steps)
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Equality assertion with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` — {} ({}:{})",
                a, b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Inequality assertion with optional context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})", a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` — {} ({}:{})",
                a, b, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// The test-harness macro: expands each `fn name(pat in strategy, ..)` to a
/// `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __ps_strat = ($($strat,)+);
            $crate::run_proptest(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                &__ps_strat,
                |__ps_vals| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(__ps_vals);
                    (|| { $body Ok(()) })()
                },
            );
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::case_rng("bounds", 0);
        for _ in 0..1_000 {
            let v = Strategy::sample(&(10i64..20), &mut rng);
            assert!((10..20).contains(&v));
            let (a, b) = Strategy::sample(&((0u64..5), (1u32..3)), &mut rng);
            assert!(a < 5 && (1..3).contains(&b));
            let xs = Strategy::sample(&crate::collection::vec(0u8..10, 1..4), &mut rng);
            assert!(!xs.is_empty() && xs.len() < 4 && xs.iter().all(|&x| x < 10));
            let s = Strategy::sample(&crate::sample::select(vec!["a", "b"]), &mut rng);
            assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::case_rng("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_generates_varied_depths() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::case_rng("rec", 0);
        let depths: Vec<usize> =
            (0..200).map(|_| depth(&Strategy::sample(&strat, &mut rng))).collect();
        assert!(depths.contains(&1), "leaves must occur");
        assert!(depths.iter().any(|&d| d >= 3), "nesting must occur");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_binds(x in 0u32..100, ys in crate::collection::vec(0i64..5, 1..4)) {
            prop_assume!(x != 1_000); // never rejects
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(ys.len(), 0);
        }
    }

    #[test]
    fn int_ranges_shrink_toward_the_lower_bound() {
        let s = 10i64..=1_000;
        let cands = Strategy::shrink(&s, &900);
        assert_eq!(cands, vec![10, 455]);
        assert!(Strategy::shrink(&s, &10).is_empty(), "lower bound is minimal");
        let s = 0u32..100;
        assert_eq!(Strategy::shrink(&s, &1), vec![0]);
    }

    #[test]
    fn vec_strategies_shrink_length_then_elements() {
        let s = crate::collection::vec(0i64..100, 1..8);
        let cands = Strategy::shrink(&s, &vec![60, 60, 60, 60]);
        assert!(cands.contains(&vec![60, 60]), "halved length missing");
        assert!(cands.contains(&vec![60, 60, 60]), "drop-one missing");
        assert!(cands.contains(&vec![0, 60, 60, 60]), "element shrink missing");
        assert!(Strategy::shrink(&s, &vec![0]).is_empty(), "minimal vec stays");
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0i64..100, 0i64..100);
        let cands = Strategy::shrink(&s, &(80, 40));
        assert!(cands.contains(&(0, 40)));
        assert!(cands.contains(&(80, 0)));
        assert!(!cands.contains(&(0, 0)), "components shrink independently");
    }

    #[test]
    fn shrinking_traverses_prop_map() {
        // the mapped value is always even; the property fails at >= 74.
        // Shrinking must thread through the closure (candidates of the
        // *input* re-mapped), so the minimum is a small even failing value
        // — the underlying x >= 37 halving toward 0 lands in [37, 73].
        let strat = (0i64..=1_000_000).prop_map(|x| x * 2);
        let mut test = |v: &i64| -> TestCaseResult {
            if *v >= 74 {
                Err(TestCaseError::fail(format!("{v} is not < 74")))
            } else {
                Ok(())
            }
        };
        // sample until a failing case comes up (the range is wide, so the
        // first draw virtually always fails)
        let mut rng = crate::case_rng("map-shrink", 0);
        let mut sample = Strategy::sample_shrinkable(&strat, &mut rng);
        while test(&sample.value).is_ok() {
            sample = Strategy::sample_shrinkable(&strat, &mut rng);
        }
        let start = sample.value;
        let (min, _msg, steps) = crate::shrink_shrinkable(sample, "seed".into(), &mut test);
        assert_eq!(min % 2, 0, "shrunk value must stay in the map's image");
        assert!((74..=146).contains(&min), "expected a near-threshold even value, got {min}");
        assert!(steps > 0 && min < start, "the failing case must actually shrink");
    }

    #[test]
    fn shrinking_traverses_tuples_of_maps() {
        // both components are mapped; the property fails when the sum is
        // large. Both must shrink through their closures independently.
        let strat = ((0i64..=10_000).prop_map(|x| x + 1), (0i64..=10_000).prop_map(|y| y * 3));
        let mut test = |v: &(i64, i64)| -> TestCaseResult {
            if v.0 + v.1 >= 10 {
                Err(TestCaseError::fail("sum too large".to_string()))
            } else {
                Ok(())
            }
        };
        let mut rng = crate::case_rng("tuple-map-shrink", 0);
        let mut sample = Strategy::sample_shrinkable(&strat, &mut rng);
        while test(&sample.value).is_ok() {
            sample = Strategy::sample_shrinkable(&strat, &mut rng);
        }
        let (min, _msg, _steps) = crate::shrink_shrinkable(sample, "seed".into(), &mut test);
        assert!(min.0 + min.1 >= 10, "minimum must still fail");
        assert!(min.0 >= 1 && min.1 % 3 == 0, "components stay in their maps' images");
        assert!(min.0 + min.1 <= 30, "greedy descent should land near the threshold, got {min:?}");
    }

    #[test]
    fn shrinking_traverses_collection_vec_of_maps() {
        // a vec of mapped elements: length shrinks first, then elements
        // shrink through the map.
        let strat = crate::collection::vec((0i64..=1_000).prop_map(|x| x * 2), 1..8);
        let mut test = |v: &Vec<i64>| -> TestCaseResult {
            if v.iter().sum::<i64>() >= 100 {
                Err(TestCaseError::fail("sum too large".to_string()))
            } else {
                Ok(())
            }
        };
        let mut rng = crate::case_rng("vec-map-shrink", 0);
        let mut sample = Strategy::sample_shrinkable(&strat, &mut rng);
        while test(&sample.value).is_ok() {
            sample = Strategy::sample_shrinkable(&strat, &mut rng);
        }
        let (min, _msg, _steps) = crate::shrink_shrinkable(sample, "seed".into(), &mut test);
        assert!(min.iter().sum::<i64>() >= 100, "minimum must still fail");
        assert!(min.iter().all(|x| x % 2 == 0), "elements stay in the map's image");
        assert!(min.len() <= 2, "length should shrink toward one element, got {min:?}");
        assert!(min.iter().sum::<i64>() <= 200, "elements should shrink too, got {min:?}");
    }

    #[test]
    fn shrink_failure_minimizes_a_threshold_counterexample() {
        // property "x < 37" fails for x >= 37; greedy shrinking from a big
        // failing sample must land well below the starting point, and the
        // reported minimum must itself still fail.
        let strat = (0i64..=1_000_000,);
        let mut test = |v: &(i64,)| -> TestCaseResult {
            if v.0 >= 37 {
                Err(TestCaseError::fail(format!("x = {} is not < 37", v.0)))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = crate::shrink_failure(&strat, (900_000,), "seed".into(), &mut test);
        assert!(min.0 >= 37, "minimized value must still fail");
        assert!(min.0 <= 73, "greedy halving should land near the threshold, got {}", min.0);
        assert!(steps > 0);
        assert!(msg.contains(&min.0.to_string()), "message reflects the minimum: {msg}");
    }
}
