//! Offline, dependency-free stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and provides
//! the [`json!`] literal macro. Only what `policysmith-bench`'s result
//! artifacts need: `to_string` / `to_string_pretty` and object/array/expr
//! literals (object keys are string literals, as in all workspace usage).

pub use serde::Value;

/// Serialization error. Rendering a [`Value`] tree cannot fail, so this is
/// uninhabited in practice; it exists so call sites can keep serde_json's
/// `Result` shape.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

/// Compact one-line JSON.
pub fn to_string<T: serde::Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&v.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Human-readable two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&v.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            render_seq(items.iter(), '[', ']', indent, level, out, |item, out| {
                render(item, indent, level + 1, out);
            })
        }
        Value::Object(pairs) => {
            render_seq(pairs.iter(), '{', '}', indent, level, out, |(k, val), out| {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            })
        }
    }
}

fn render_seq<I: ExactSizeIterator, F: Fn(I::Item, &mut String)>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    each: F,
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        each(item, out);
        if i + 1 < n {
            out.push(',');
            if indent.is_none() {
                // compact mode separates with nothing extra
            }
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; match serde_json's null
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from JSON-looking syntax. Object keys must be string
/// literals; values may be nested object literals or any
/// `serde::Serialize` expression (array literals of one element type
/// serialize through the expression path).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_internal!(obj ( $($body)+ ));
        $crate::Value::Object(obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Object-body muncher for [`json!`]: one `"key": value` pair per step,
/// recursing into nested `{ .. }` literals before falling back to plain
/// expressions (which an `expr` fragment would otherwise swallow as a
/// block).
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($obj:ident ()) => {};
    ($obj:ident ( $key:literal : { $($nested:tt)* } , $($rest:tt)* )) => {
        $obj.extend([($key.to_string(), $crate::json!({ $($nested)* }))]);
        $crate::json_object_internal!($obj ( $($rest)* ));
    };
    ($obj:ident ( $key:literal : { $($nested:tt)* } )) => {
        $obj.extend([($key.to_string(), $crate::json!({ $($nested)* }))]);
    };
    ($obj:ident ( $key:literal : null , $($rest:tt)* )) => {
        $obj.extend([($key.to_string(), $crate::Value::Null)]);
        $crate::json_object_internal!($obj ( $($rest)* ));
    };
    ($obj:ident ( $key:literal : null )) => {
        $obj.extend([($key.to_string(), $crate::Value::Null)]);
    };
    ($obj:ident ( $key:literal : $val:expr , $($rest:tt)* )) => {
        $obj.extend([($key.to_string(), $crate::to_value(&$val))]);
        $crate::json_object_internal!($obj ( $($rest)* ));
    };
    ($obj:ident ( $key:literal : $val:expr )) => {
        $obj.extend([($key.to_string(), $crate::to_value(&$val))]);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_nesting() {
        let v = json!({
            "name": "policysmith",
            "ok": true,
            "pi": 3.25,
            "counts": [1, 2, 3],
            "paper": { "util": [0.23, 0.98] },
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"name\":\"policysmith\",\"ok\":true,\"pi\":3.25,\
             \"counts\":[1,2,3],\"paper\":{\"util\":[0.23,0.98]}}"
        );
    }

    #[test]
    fn expressions_interpolate() {
        let xs = vec![1u64, 2];
        let name = "trace-a".to_string();
        let v = json!({ "xs": xs, "name": name, "n": 2usize });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n"));
        assert!(s.contains("\"name\": \"trace-a\""));
        assert!(s.contains("\"n\": 2"));
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&12_345_678u64).unwrap(), "12345678");
        assert_eq!(to_string(&(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }
}
