//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny slice of the rand API it actually uses: a seedable,
//! deterministic generator ([`rngs::StdRng`], xoshiro256++) and the
//! [`RngExt`] sampling extension (`random_range` over integer/float ranges,
//! `random_bool`). Determinism contract: the same seed and call sequence
//! yield the same stream on every platform — several tests and the whole
//! mock-LLM search depend on it.

/// Low-level entropy source: everything samples through `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`] (mirrors `rand::Rng`).
pub trait RngExt: RngCore {
    /// Uniform sample from an integer or float range. Generic over the
    /// output type so the expected type drives literal inference, like
    /// `rand::Rng::random_range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).random_range(0..u64::MAX) == c.random_range(0..u64::MAX)
            })
            .count();
        assert!(same < 5, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let v = rng.random_range(3..=5u8);
            assert!((3..=5).contains(&v));
            let f = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.random_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.random_range(-1_000_000..=1_000_000i64);
            assert!((-1_000_000..=1_000_000).contains(&v));
        }
    }
}
