//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! slice of criterion's API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` harness macros — over a plain wall-clock measurement
//! loop. No statistics, plots, or outlier analysis: each benchmark is
//! warmed up briefly, then timed for `sample_size` batches and reported as
//! mean time per iteration (plus throughput when declared).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hierarchical benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: u64,
    report: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `f`, recording one duration sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed and size batches so one
        // batch is long enough for the clock to resolve.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.report.push(t0.elapsed() / per_batch as u32);
        }
    }
}

fn run_one(
    label: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut report = Vec::new();
    f(&mut Bencher { samples, report: &mut report });
    if report.is_empty() {
        println!("{label:50} (no samples)");
        return;
    }
    let mean = report.iter().map(|d| d.as_nanos()).sum::<u128>() as f64 / report.len() as f64;
    let best = report.iter().map(|d| d.as_nanos()).min().unwrap() as f64;
    let mut line = format!("{label:50} {:>12}/iter (best {:>12})", fmt_ns(mean), fmt_ns(best));
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  {:>12.0} elem/s", n as f64 / (mean / 1e9)));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!("  {:>12.0} B/s", n as f64 / (mean / 1e9)));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Configure from CLI args (accepted for API compatibility; the only
    /// recognized behaviour is running everything).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        demo(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = demo
    }

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
