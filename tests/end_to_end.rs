//! Cross-crate integration tests: the full PolicySmith pipeline for all
//! three case studies, exercised exactly as the paper describes it.

use policysmith::cachesim::PriorityPolicy;
use policysmith::core::search::{run_search, SearchConfig, Study};
use policysmith::core::studies::cache::CacheStudy;
use policysmith::core::studies::cc::CcStudy;
use policysmith::core::studies::lb::LbStudy;
use policysmith::gen::{GenConfig, MockLlm};

fn quick_cfg() -> SearchConfig {
    SearchConfig { rounds: 5, candidates_per_round: 10, ..SearchConfig::quick() }
}

/// The cross-crate version of the pipelined-equivalence guarantee: on a
/// real cache study (compiled artifacts, trace replay in the evaluator),
/// the pipelined executor returns exactly the sequential outcome.
#[test]
fn pipelined_cache_search_matches_sequential() {
    let trace = policysmith::traces::cloudphysics().trace(10, 15_000);
    let study = CacheStudy::new(&trace);
    let base = SearchConfig { exemplar_lag: 1, threads: 3, ..quick_cfg() };
    let run = |cfg: SearchConfig| {
        let mut llm = MockLlm::new(GenConfig::cache_defaults(7));
        run_search(&study, &mut llm, &cfg)
    };
    let seq = run(base);
    let pipe = run(SearchConfig { pipeline: true, ..base });
    assert_eq!(seq.best, pipe.best);
    assert_eq!(seq.all, pipe.all);
    assert_eq!(seq.rounds, pipe.rounds);
}

#[test]
fn cache_search_beats_both_seeds_on_its_context() {
    let trace = policysmith::traces::cloudphysics().trace(89, 25_000);
    let study = CacheStudy::new(&trace);
    let lru = study.evaluate(&study.check("obj.last_access").unwrap());
    let lfu = study.evaluate(&study.check("obj.count").unwrap());

    let mut llm = MockLlm::new(GenConfig::cache_defaults(99));
    let outcome = run_search(&study, &mut llm, &quick_cfg());
    assert!(
        outcome.best.score >= lru.max(lfu),
        "search ({:.4}) must match/beat seeds (lru {:.4}, lfu {:.4})",
        outcome.best.score,
        lru,
        lfu
    );
    // and the winner re-evaluates to the same score (determinism across
    // the whole stack)
    let re = study.evaluate(&study.check(&outcome.best.source).unwrap());
    assert!((re - outcome.best.score).abs() < 1e-12);
}

#[test]
fn cache_search_is_reproducible_end_to_end() {
    let trace = policysmith::traces::msr().trace(3, 20_000);
    let run = || {
        let study = CacheStudy::new(&trace);
        let mut llm = MockLlm::new(GenConfig::cache_defaults(7));
        run_search(&study, &mut llm, &quick_cfg()).best
    };
    let (a, b) = (run(), run());
    assert_eq!(a.source, b.source);
    assert_eq!(a.score, b.score);
}

#[test]
fn cc_pipeline_verifies_and_runs_candidates() {
    let study = CcStudy::with_duration(3_000_000);
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(5));
    let outcome = run_search(&study, &mut llm, &quick_cfg());
    // the best candidate is a real controller on the emulated link
    assert!(outcome.best.score > 0.0, "{:?}", outcome.best);
    let c = study.check(&outcome.best.source).unwrap();
    let m = study.metrics(&c);
    assert!(m.utilization > 0.1 && m.utilization <= 1.0);
}

#[test]
fn synthesized_cache_policy_runs_on_foreign_traces() {
    // Table-2 mechanics: a heuristic tuned on one trace must at least run
    // cleanly (no faults) everywhere in the dataset.
    let ds = policysmith::traces::cloudphysics();
    let home = ds.trace(10, 20_000);
    let study = CacheStudy::new(&home);
    let mut llm = MockLlm::new(GenConfig::cache_defaults(3));
    let best = run_search(&study, &mut llm, &quick_cfg()).best;

    for idx in [0usize, 25, 55] {
        let foreign = ds.trace(idx, 15_000);
        let cap = (policysmith::traces::footprint_bytes(&foreign) / 10).max(1);
        let expr = policysmith::dsl::parse(&best.source).unwrap();
        let mut cache =
            policysmith::cachesim::Cache::new(cap, PriorityPolicy::from_expr("synth", &expr));
        let r = cache.run(&foreign);
        assert_eq!(r.requests, foreign.len() as u64);
        assert!(cache.policy.first_error().is_none(), "candidate faulted on {}", foreign.name);
    }
}

#[test]
fn paper_listing1_and_baselines_coexist_on_one_trace() {
    let trace = policysmith::traces::cloudphysics().trace(89, 20_000);
    let cap = (policysmith::traces::footprint_bytes(&trace) / 10).max(1);
    // every baseline + the embedded Listing 1 complete the trace with
    // consistent accounting
    for name in policysmith::cachesim::policies::all_baseline_names() {
        let p = policysmith::cachesim::policies::by_name(name).unwrap();
        let r = policysmith::cachesim::simulate(&trace, cap, p);
        assert_eq!(r.hits + r.misses, r.requests, "{name}");
        assert!(r.miss_ratio() > 0.0 && r.miss_ratio() <= 1.0, "{name}");
    }
    let mut cache =
        policysmith::cachesim::Cache::new(cap, policysmith::cachesim::paper_heuristic_a());
    let r = cache.run(&trace);
    assert!(cache.policy.first_error().is_none());
    assert!(r.miss_ratio() < 1.0);
}

#[test]
fn lb_search_beats_round_robin_and_jsq_on_the_flash_crowd() {
    // The acceptance bar for the third workload: the searched policy must
    // beat both the no-op baseline (round-robin, improvement 0) and the
    // strongest queue-length heuristic (JSQ) on the hostile context.
    let study = LbStudy::new(&policysmith::lbsim::scenario::flash_crowd());
    let jsq = study.baseline_improvement("jsq");

    let mut llm = MockLlm::new(GenConfig::lb_defaults(23));
    let outcome = run_search(&study, &mut llm, &quick_cfg());
    assert!(outcome.best.score > 0.0, "must beat round-robin: {:?}", outcome.best);
    assert!(
        outcome.best.score > jsq,
        "search ({:.4}) must beat JSQ ({:.4})",
        outcome.best.score,
        jsq
    );
    // and the winner re-evaluates to the same score (whole-stack determinism)
    let re = study.evaluate(&study.check(&outcome.best.source).unwrap());
    assert!((re - outcome.best.score).abs() < 1e-12);
}

#[test]
fn lb_search_is_reproducible_end_to_end() {
    let run = || {
        let study = LbStudy::new(&policysmith::lbsim::scenario::flash_crowd());
        let mut llm = MockLlm::new(GenConfig::lb_defaults(23));
        run_search(&study, &mut llm, &quick_cfg()).best
    };
    let (a, b) = (run(), run());
    assert_eq!(a.source, b.source);
    assert_eq!(a.score, b.score);
}

#[test]
fn lb_candidates_run_cleanly_on_foreign_scenarios() {
    // Table-2 mechanics for the third workload: a policy tuned on the
    // flash crowd must at least run fault-free on every other preset.
    let study = LbStudy::new(&policysmith::lbsim::scenario::flash_crowd());
    let mut llm = MockLlm::new(GenConfig::lb_defaults(31));
    let best = run_search(&study, &mut llm, &quick_cfg()).best;
    let expr = policysmith::dsl::parse(&best.source).unwrap();

    for sc in policysmith::lbsim::scenario::all_presets() {
        let mut host = policysmith::lbsim::ExprDispatcher::from_expr("synth", &expr);
        let m = policysmith::lbsim::simulate(&sc, &mut host);
        assert_eq!(m.completed + m.dropped, m.offered, "{}", sc.name);
        assert!(host.first_error().is_none(), "candidate faulted on {}", sc.name);
    }
}

#[test]
fn kernel_candidates_compile_rate_is_in_band() {
    use policysmith::gen::{Generator, Prompt};
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(123));
    let batch = llm.generate(&Prompt::new(policysmith::dsl::Mode::Kernel), 200);
    let first = batch.iter().filter(|s| policysmith::cc::check_candidate(s).is_ok()).count();
    let rate = first as f64 / batch.len() as f64;
    // paper band: 63%; allow slack for the statistical fault injection
    assert!((0.5..=0.8).contains(&rate), "kernel first-pass rate {rate} out of band");
}
