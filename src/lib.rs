//! # policysmith — facade crate
//!
//! Re-exports the whole PolicySmith workspace behind one dependency. See the
//! README for a tour and `examples/` for runnable entry points.

pub use policysmith_aqmsim as aqmsim;
pub use policysmith_cachesim as cachesim;
pub use policysmith_cc as cc;
pub use policysmith_core as core;
pub use policysmith_dsl as dsl;
pub use policysmith_ebpf as ebpf;
pub use policysmith_gen as gen;
pub use policysmith_kbpf as kbpf;
pub use policysmith_lbsim as lbsim;
pub use policysmith_netsim as netsim;
pub use policysmith_obs as obs;
pub use policysmith_serve as serve;
pub use policysmith_traces as traces;
