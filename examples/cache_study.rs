//! The §4 case study in miniature: synthesize instance-optimal heuristics
//! for two very different CloudPhysics-like contexts and show that each
//! wins at home (instance-optimality) but not necessarily away — the
//! paper's core observation.
//!
//! ```sh
//! cargo run --release --example cache_study
//! ```

use policysmith::cachesim::PriorityPolicy;
use policysmith::core::search::{run_search, SearchConfig};
use policysmith::core::studies::cache::CacheStudy;
use policysmith::gen::{GenConfig, MockLlm};

fn main() {
    let ds = policysmith::traces::cloudphysics();
    let contexts = [89usize, 10];
    let cfg = SearchConfig { rounds: 8, candidates_per_round: 15, ..SearchConfig::paper_cache() };

    let mut heuristics = Vec::new();
    for &idx in &contexts {
        let trace = ds.trace(idx, 40_000);
        let study = CacheStudy::new(&trace);
        let mut llm = MockLlm::new(GenConfig::cache_defaults(idx as u64));
        let best = run_search(&study, &mut llm, &cfg).best;
        println!(
            "synthesized for {}: {:+.2}% over FIFO\n  {}",
            trace.name,
            best.score * 100.0,
            best.source
        );
        heuristics.push((trace.name.clone(), best.source));
    }

    println!("\ncross-context matrix (improvement over FIFO):");
    print!("{:24}", "");
    for &idx in &contexts {
        print!("  on {:14}", ds.trace_name(idx));
    }
    println!();
    for (home, source) in &heuristics {
        print!("{home:24}");
        for &idx in &contexts {
            let trace = ds.trace(idx, 40_000);
            let study = CacheStudy::new(&trace);
            let expr = policysmith::dsl::parse(source).unwrap();
            let score = study.improvement(PriorityPolicy::from_expr("h", &expr));
            print!("  {:+15.2}%", score * 100.0);
        }
        println!();
    }
    println!("\n(diagonal entries are the home contexts: expect them strong)");
}
