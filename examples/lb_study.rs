//! The third workload end-to-end: synthesize a dispatch policy for a
//! flash-crowd load-balancing scenario and compare it against every
//! classical baseline.
//!
//! ```sh
//! cargo run --release --example lb_study
//! ```

use policysmith::core::search::{run_search, SearchConfig, Study};
use policysmith::core::studies::lb::LbStudy;
use policysmith::gen::{GenConfig, MockLlm};
use policysmith::lbsim::{lb_baseline_names, scenario};

fn main() {
    // 1. A context: heterogeneous fleet + MMPP flash crowds.
    let sc = scenario::flash_crowd();
    let study = LbStudy::new(&sc);
    println!(
        "context: {} ({} servers, {} requests, offered load {:.0}%)",
        sc.name,
        sc.servers.len(),
        sc.workload.n,
        sc.offered_load() * 100.0
    );
    println!("round-robin mean slowdown: {:.2}", study.rr_slowdown());

    // 2. Classical baselines — the man-made heuristics of this tier.
    println!("\n-- baselines (improvement over round-robin) --");
    for name in lb_baseline_names() {
        println!("{name:14} {:+.2}%", study.baseline_improvement(name) * 100.0);
    }

    // 3. Search: same loop, same generator machinery, third template.
    let mut llm = MockLlm::new(GenConfig::lb_defaults(23));
    let cfg = SearchConfig { rounds: 8, candidates_per_round: 15, ..SearchConfig::paper_cache() };
    let outcome = run_search(&study, &mut llm, &cfg);

    println!("\nbest policy after {} candidates:", outcome.all.len());
    println!("  score(server, req) = {}", outcome.best.source);
    println!("  improvement over round-robin: {:+.2}%", outcome.best.score * 100.0);
    let jsq = study.baseline_improvement("jsq");
    println!("  JSQ for reference:            {:+.2}%", jsq * 100.0);
    assert!(outcome.best.score > jsq, "search must beat join-shortest-queue on the flash crowd");

    // 4. Determinism: the winner re-evaluates to the identical score.
    let re = study.evaluate(&study.check(&outcome.best.source).unwrap());
    assert!((re - outcome.best.score).abs() < 1e-12);
    println!(
        "\nsimulated LLM cost: {} requests, ${:.4}",
        outcome.cost.tokens.requests,
        outcome.cost.cost_usd()
    );
}
