//! The fourth workload end-to-end: synthesize an AQM verdict policy for
//! the steady deep-buffer preset and compare it against the man-made
//! classics (CoDel, PIE) on the power metric.
//!
//! ```sh
//! cargo run --release --example aqm_study
//! ```

use policysmith::aqmsim::{aqm_baseline_names, scenario};
use policysmith::core::search::{run_search, SearchConfig, Study};
use policysmith::core::studies::aqm::AqmStudy;
use policysmith::gen::{GenConfig, MockLlm};

fn main() {
    // 1. A context: two Reno flows into a 4×BDP drop-tail buffer.
    let sc = scenario::steady();
    let study = AqmStudy::new(&sc);
    println!(
        "context: {} ({} flows, {:.0} ms buffer drain at line rate)",
        sc.name,
        sc.flows.len(),
        sc.sim.link.queue_bytes as f64 * 8.0 / sc.sim.link.rate_bps as f64 * 1e3
    );
    println!("drop-tail power: {:.4}", study.droptail_power());

    // 2. Classical baselines — three decades of man-made queue management.
    println!("\n-- baselines (power improvement over drop-tail) --");
    for name in aqm_baseline_names() {
        println!("{name:12} {:+.1}%", study.baseline_improvement(name) * 100.0);
    }

    // 3. Search: same loop, same generator machinery, fourth template.
    let mut llm = MockLlm::new(GenConfig::aqm_defaults(31));
    let cfg = SearchConfig { rounds: 8, candidates_per_round: 15, ..SearchConfig::paper_cache() };
    let outcome = run_search(&study, &mut llm, &cfg);

    println!("\nbest policy after {} candidates:", outcome.all.len());
    println!("  act(pkt, q) = {}", outcome.best.source);
    println!("  improvement over drop-tail: {:+.1}%", outcome.best.score * 100.0);
    let codel = study.baseline_improvement("codel");
    println!("  CoDel for reference:        {:+.1}%", codel * 100.0);
    assert!(outcome.best.score > codel, "search must beat CoDel on its home preset");

    // 4. Determinism: the winner re-evaluates to the identical score.
    let re = study.evaluate(&study.check(&outcome.best.source).unwrap());
    assert!((re - outcome.best.score).abs() < 1e-12);
    println!(
        "\nsimulated LLM cost: {} requests, ${:.4}",
        outcome.cost.tokens.requests,
        outcome.cost.cost_usd()
    );
}
