//! §3.1 end-to-end, in ALL THREE domains: deploy a synthesized heuristic,
//! detect an implicit context shift with the guardrail monitor,
//! re-synthesize offline through the [`AdaptiveController`], and grow the
//! heuristic library.
//!
//! * **Caching**: the workload drifts from a morning trace to a
//!   structurally different evening trace through the same cache.
//! * **Load balancing**: a healthy fleet loses a node mid-run
//!   (slow-node onset) while the dispatch policy keeps serving.
//! * **Congestion control**: the emulated link's properties step
//!   mid-deployment (3× the RTT at half the bandwidth — a path change),
//!   and the kernel-template policy tuned for the short path limps.
//!
//! ```sh
//! cargo run --release --example context_shift
//! ```

use policysmith::cachesim::{Cache, PriorityPolicy};
use policysmith::cc::{evaluate_with, KbpfCc, LinkCfg, SimConfig};
use policysmith::core::library::{AdaptiveController, ContextMonitor, LibraryEntry};
use policysmith::core::search::{run_search, SearchConfig, Study};
use policysmith::core::studies::cache::CacheStudy;
use policysmith::core::studies::cc::{CcStudy, DELAY_WEIGHT, QDELAY_NORM_US};
use policysmith::core::studies::lb::LbStudy;
use policysmith::gen::{GenConfig, MockLlm};
use policysmith::lbsim::{run_phased, run_phased_windowed, scenario, ExprDispatcher};
use policysmith::traces::cloudphysics;

fn main() {
    cache_domain();
    lb_domain();
    cc_domain();
}

/// Caching: morning regime → evening regime through one live cache.
fn cache_domain() {
    println!("== cache domain: morning → evening workload shift ==");
    let ds = cloudphysics();
    let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::paper_cache() };

    // Synthesize for the morning regime (trace w10) and deploy.
    let morning = ds.trace(10, 40_000);
    let study = CacheStudy::new(&morning);
    let mut llm = MockLlm::new(GenConfig::cache_defaults(1));
    let best = run_search(&study, &mut llm, &cfg).best;
    println!("deployed for {}: {:+.2}% over FIFO", morning.name, best.score * 100.0);

    // The reuse bar: a stored policy must beat what the deployed one
    // already delivers on the drifted context by 2% absolute, else the
    // controller re-synthesizes.
    let evening = ds.trace(55, 40_000);
    let study2 = CacheStudy::new(&evening);
    let expr = policysmith::dsl::parse(&best.source).unwrap();
    let stale_on_evening = study2.improvement(PriorityPolicy::from_expr("stale", &expr));
    let mut ctrl = AdaptiveController::new(ContextMonitor::new(20, 1.15), stale_on_evening + 0.02);
    ctrl.deploy(LibraryEntry {
        context: morning.name.clone(),
        source: best.source.clone(),
        score: best.score,
    });

    // Serve the morning regime, then an (implicit) shift to the evening
    // regime: a structurally different trace through the same cache.
    let cap = study.capacity();
    let mut cache = Cache::new(cap, PriorityPolicy::from_expr("deployed", &expr));
    let mut drift_at = None;
    let window = 1_000;
    for (i, chunk) in
        morning.requests.chunks(window).chain(evening.requests.chunks(window)).enumerate()
    {
        let before = cache.result();
        for req in chunk {
            cache.request(req);
        }
        let after = cache.result();
        let window_mr = (after.misses - before.misses) as f64 / chunk.len() as f64;
        if ctrl.observe(window_mr) && drift_at.is_none() {
            drift_at = Some(i);
            println!("guardrail fired at window {i} (rolling miss ratio degraded)");
        }
    }
    let drift = drift_at.expect("the regime change must be detected");
    assert!(drift >= morning.len() / window, "no false positive in the home regime");

    // Offline adaptation for the new context; the library grows (§3.1).
    let mut llm2 = MockLlm::new(GenConfig::cache_defaults(2));
    let adaptation = ctrl.adapt(&evening.name, &study2, &mut llm2, &cfg);
    println!(
        "adaptation: {} for {} ({:+.2}% over FIFO; stale policy was {:+.2}%) — {} entries total\n",
        if adaptation.resynthesized() { "re-synthesized" } else { "library hit" },
        evening.name,
        adaptation.entry().score * 100.0,
        stale_on_evening * 100.0,
        ctrl.library().len()
    );
}

/// Load balancing: a node degrades mid-run under a live dispatch policy.
fn lb_domain() {
    println!("== lb domain: slow-node onset mid-run ==");
    let phases = scenario::slow_node_onset_phases();
    let (healthy, onset) = (&phases[0], &phases[1]);
    let cfg = SearchConfig { rounds: 4, candidates_per_round: 10, ..SearchConfig::paper_cache() };

    // Synthesize for the healthy fleet and deploy.
    let healthy_study = LbStudy::new(healthy);
    let mut llm = MockLlm::new(GenConfig::lb_defaults(11));
    let best = run_search(&healthy_study, &mut llm, &cfg).best;
    println!("deployed for {}: {:+.2}% over round-robin", healthy.name, best.score * 100.0);

    let onset_study = LbStudy::new(onset);
    let expr = policysmith::dsl::parse(&best.source).unwrap();
    let mut stale_probe = ExprDispatcher::from_expr("stale", &expr);
    let stale_on_onset = onset_study.improvement(&mut stale_probe);
    let mut ctrl = AdaptiveController::new(ContextMonitor::new(6, 1.35), stale_on_onset + 0.02);
    ctrl.deploy(LibraryEntry {
        context: healthy.name.clone(),
        source: best.source.clone(),
        score: best.score,
    });

    // Serve both phases through one live fleet, sampling windowed mean
    // slowdown; server 5 drops to speed 1 at the boundary.
    let mut host = ExprDispatcher::from_expr("deployed", &expr);
    let window = 500;
    let mut drift_at = None;
    let mut windows = 0usize;
    let mut prev_phase = 0usize;
    run_phased_windowed(&phases, &mut host, window, &mut |phase, interval| {
        if phase != prev_phase {
            prev_phase = phase;
            println!("(server 5 degrades to speed 1 at window {windows})");
        }
        windows += 1;
        if ctrl.observe(interval.resolved_slowdown()) && drift_at.is_none() {
            drift_at = Some((phase, windows));
            println!("guardrail fired at window {windows} (windowed slowdown degraded)");
        }
    });
    let (drift_phase, _) = drift_at.expect("the onset must be detected");
    assert_eq!(drift_phase, 1, "no false positive on the healthy fleet");

    // Offline adaptation; then replay the shift with both policies.
    let resynth_cfg =
        SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::paper_cache() };
    let mut llm2 = MockLlm::new(GenConfig::lb_defaults(12));
    let adaptation = ctrl.adapt(&onset.name, &onset_study, &mut llm2, &resynth_cfg);
    println!(
        "adaptation: {} for {} ({:+.2}% over RR; stale policy was {:+.2}%) — {} entries total",
        if adaptation.resynthesized() { "re-synthesized" } else { "library hit" },
        onset.name,
        adaptation.entry().score * 100.0,
        stale_on_onset * 100.0,
        ctrl.library().len()
    );

    let adapted_expr = policysmith::dsl::parse(&adaptation.entry().source).unwrap();
    let stale_run = run_phased(&phases, &mut ExprDispatcher::from_expr("stale", &expr));
    let adapted_run = run_phased(&phases, &mut ExprDispatcher::from_expr("adapted", &adapted_expr));
    println!(
        "post-shift mean slowdown: stale {:.4} → adapted {:.4}\n",
        stale_run.phase_slowdown(1),
        adapted_run.phase_slowdown(1)
    );
    assert!(adapted_run.phase_slowdown(1) < stale_run.phase_slowdown(1));
}

/// Congestion control: the emulated link's properties step mid-deployment
/// (a route change onto a longer, thinner path).
fn cc_domain() {
    println!("== cc domain: link-property step (RTT×3, bandwidth÷2) ==");
    // the short path: the paper link (12 Mbps, 20 ms), 3 s emulated epochs
    let mut short = SimConfig::paper_scenario();
    short.duration_us = 3_000_000;
    // the long path: 3× the RTT at half the bandwidth, 1-BDP buffer
    let mut long = short;
    let (rate_bps, delay_us) = (6_000_000u64, 60_000u64);
    long.link =
        LinkCfg { rate_bps, delay_us, queue_bytes: rate_bps / 8 * (2 * delay_us) / 1_000_000 };

    // Synthesize for the short path and deploy.
    let cfg = SearchConfig { rounds: 4, candidates_per_round: 8, ..SearchConfig::paper_cache() };
    let short_study = CcStudy::with_scenario(short);
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(31));
    let best = run_search(&short_study, &mut llm, &cfg).best;
    println!("deployed for cc/short-path: objective {:.4}", best.score);

    // The serving-time quality signal, one sample per emulated epoch:
    // 1 − (utilization − λ·qdelay/norm), lower = better — the same
    // objective the study optimizes, inverted into a degradation signal.
    let signal = |link_cfg: &SimConfig, source: &str| -> f64 {
        let cand = policysmith::cc::check_candidate(source).expect("deployed source verifies");
        let m = evaluate_with(*link_cfg, Box::new(KbpfCc::new(cand)));
        1.0 - (m.utilization - DELAY_WEIGHT * (m.mean_qdelay_us / QDELAY_NORM_US))
    };

    let long_study = CcStudy::with_scenario(long);
    let stale_on_long = long_study.evaluate(&long_study.check(&best.source).unwrap());
    let mut ctrl = AdaptiveController::new(ContextMonitor::new(3, 1.25), stale_on_long + 0.02);
    ctrl.deploy(LibraryEntry {
        context: "cc/short-path".into(),
        source: best.source.clone(),
        score: best.score,
    });

    // Five epochs on the short path, then the route flips.
    let mut drift_at = None;
    for epoch in 0..10 {
        let link_cfg = if epoch < 5 { &short } else { &long };
        let s = signal(link_cfg, &best.source);
        if ctrl.observe(s) && drift_at.is_none() {
            drift_at = Some(epoch);
            println!("guardrail fired at epoch {epoch} (utilization/delay objective degraded)");
        }
    }
    let drift = drift_at.expect("the route change must be detected");
    assert!(drift >= 5, "no false positive on the short path");

    // Offline adaptation for the long path; the library grows (§3.1).
    let mut llm2 = MockLlm::new(GenConfig::kernel_defaults(32));
    let adaptation = ctrl.adapt("cc/long-path", &long_study, &mut llm2, &cfg);
    let deployed_on_long = match &adaptation {
        policysmith::core::Adaptation::FromLibrary { score, .. } => *score,
        policysmith::core::Adaptation::Resynthesized { entry } => entry.score,
    };
    println!(
        "adaptation: {} for cc/long-path (objective {:.4}; stale policy was {:.4}) — {} entries total",
        if adaptation.resynthesized() { "re-synthesized" } else { "library hit" },
        deployed_on_long,
        stale_on_long,
        ctrl.library().len()
    );
    // the controller never deploys a policy worse (on the long path) than
    // the stale one it already knew
    assert!(deployed_on_long >= stale_on_long);
}
