//! §3.1 end-to-end: deploy a heuristic, detect an implicit context shift
//! with the guardrail monitor, re-synthesize offline, and grow the
//! heuristic library.
//!
//! ```sh
//! cargo run --release --example context_shift
//! ```

use policysmith::cachesim::{Cache, PriorityPolicy};
use policysmith::core::library::{ContextMonitor, HeuristicLibrary, LibraryEntry};
use policysmith::core::search::{run_search, SearchConfig};
use policysmith::core::studies::cache::CacheStudy;
use policysmith::gen::{GenConfig, MockLlm};
use policysmith::traces::cloudphysics;

fn main() {
    let ds = cloudphysics();
    let cfg = SearchConfig { rounds: 6, candidates_per_round: 12, ..SearchConfig::paper_cache() };
    let mut library = HeuristicLibrary::new();

    // Synthesize for the morning regime (trace w10).
    let morning = ds.trace(10, 40_000);
    let study = CacheStudy::new(&morning);
    let mut llm = MockLlm::new(GenConfig::cache_defaults(1));
    let best = run_search(&study, &mut llm, &cfg).best;
    println!("deployed for {}: {:+.2}% over FIFO", morning.name, best.score * 100.0);
    library.add(LibraryEntry {
        context: morning.name.clone(),
        source: best.source.clone(),
        score: best.score,
    });

    // Serve the morning regime, then an (implicit) shift to the evening
    // regime: a structurally different trace through the same cache.
    let evening = ds.trace(55, 40_000);
    let expr = policysmith::dsl::parse(&best.source).unwrap();
    let cap = study.capacity();
    let mut cache = Cache::new(cap, PriorityPolicy::from_expr("deployed", &expr));
    let mut monitor = ContextMonitor::new(20, 1.15);
    let mut drift_at = None;

    let window = 1_000;
    for (i, chunk) in
        morning.requests.chunks(window).chain(evening.requests.chunks(window)).enumerate()
    {
        let before = cache.result();
        for req in chunk {
            cache.request(req);
        }
        let after = cache.result();
        let window_mr = (after.misses - before.misses) as f64 / chunk.len() as f64;
        if monitor.observe(window_mr) && drift_at.is_none() {
            drift_at = Some(i);
            println!("guardrail fired at window {i} (rolling miss ratio degraded)");
        }
    }
    let drift = drift_at.expect("the regime change must be detected");
    assert!(drift >= morning.len() / window, "no false positive in the home regime");

    // Offline re-synthesis for the new context; the library grows (§3.1).
    let study2 = CacheStudy::new(&evening);
    let mut llm2 = MockLlm::new(GenConfig::cache_defaults(2));
    let best2 = run_search(&study2, &mut llm2, &cfg).best;
    library.add(LibraryEntry {
        context: evening.name.clone(),
        source: best2.source.clone(),
        score: best2.score,
    });
    println!("re-synthesized for {}: {:+.2}% over FIFO", evening.name, best2.score * 100.0);

    // An adaptation system can now pick per context.
    let (pick, score) = library
        .best_for(|e| {
            let expr = policysmith::dsl::parse(&e.source).unwrap();
            study2.improvement(PriorityPolicy::from_expr("lib", &expr))
        })
        .unwrap();
    println!(
        "library pick for the evening regime: the {} heuristic ({:+.2}%) — {} entries total",
        pick.context,
        score * 100.0,
        library.len()
    );
}
