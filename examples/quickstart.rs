//! Quickstart: synthesize a cache-eviction heuristic for one context in
//! under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use policysmith::core::search::{run_search, SearchConfig, Study};
use policysmith::core::studies::cache::CacheStudy;
use policysmith::gen::{GenConfig, MockLlm};

fn main() {
    // 1. A context: one workload trace + a cache sized at 10% of footprint.
    let trace = policysmith::traces::cloudphysics().trace(89, 40_000);
    let study = CacheStudy::new(&trace);
    println!(
        "context: {} ({} requests, FIFO miss ratio {:.3})",
        trace.name,
        trace.len(),
        study.fifo_miss_ratio()
    );

    // 2. A Generator. `MockLlm` is the offline stand-in; implement the
    //    `policysmith::gen::Generator` trait to plug in a real LLM.
    let mut llm = MockLlm::new(GenConfig::cache_defaults(7));

    // 3. Search: generate → check → evaluate → feed back the best.
    let cfg = SearchConfig { rounds: 8, candidates_per_round: 15, ..SearchConfig::paper_cache() };
    let outcome = run_search(&study, &mut llm, &cfg);

    println!("\nbest heuristic after {} candidates:", outcome.all.len());
    println!("  priority() = {}", outcome.best.source);
    println!("  improvement over FIFO: {:+.2}%", outcome.best.score * 100.0);

    // 4. Compare against the strongest classical baseline.
    let gdsf = study.improvement(policysmith::cachesim::policies::Gdsf::new());
    println!("  GDSF for reference:    {:+.2}%", gdsf * 100.0);
    println!(
        "\nsimulated LLM cost: {} requests, ${:.4}",
        outcome.cost.tokens.requests,
        outcome.cost.cost_usd()
    );
    let _ = study.evaluate(&study.check(&outcome.best.source).unwrap());
}
