//! The §5 case study in miniature: generate kernel congestion-control
//! candidates, push them through the verifier pipeline, and run the
//! survivors on the 12 Mbps / 20 ms emulated link.
//!
//! ```sh
//! cargo run --release --example cc_study
//! ```

use policysmith::cc::{baselines, check_candidate, evaluate, KbpfCc};
use policysmith::dsl::Mode;
use policysmith::gen::{GenConfig, Generator, MockLlm, Prompt};

fn main() {
    let mut llm = MockLlm::new(GenConfig::kernel_defaults(17));
    let prompt = Prompt::new(Mode::Kernel);
    let batch = llm.generate(&prompt, 30);

    let mut verified = Vec::new();
    let mut rejected = 0;
    for src in &batch {
        match check_candidate(src) {
            Ok(c) => verified.push(c),
            Err(e) => {
                rejected += 1;
                if rejected <= 3 {
                    println!("rejected ({}): {}", e.stage(), src);
                    println!("   stderr: {}", e.to_string().lines().next().unwrap_or(""));
                }
            }
        }
    }
    println!("\n{} of {} candidates passed the verifier pipeline\n", verified.len(), batch.len());

    println!("{:50} {:>7} {:>10}", "verified candidate", "util%", "qdelay ms");
    for c in verified.iter().take(10) {
        let m = evaluate(Box::new(KbpfCc::new(c.clone())), 10_000_000);
        let short =
            if c.source.len() > 48 { format!("{}…", &c.source[..47]) } else { c.source.clone() };
        println!("{:50} {:>6.1} {:>9.1}", short, m.utilization * 100.0, m.mean_qdelay_us / 1000.0);
    }

    println!("\n-- classical baselines --");
    for cc in baselines::all_baselines() {
        let name = cc.name().to_string();
        let m = evaluate(cc, 10_000_000);
        println!("{name:50} {:>6.1} {:>9.1}", m.utilization * 100.0, m.mean_qdelay_us / 1000.0);
    }
}
