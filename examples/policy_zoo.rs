//! Run all sixteen baseline eviction policies (plus the paper's Listing 1)
//! on one trace and print the league table.
//!
//! ```sh
//! cargo run --release --example policy_zoo [trace-index]
//! ```

use policysmith::cachesim::{paper_heuristic_a, policies, simulate, Cache};

fn main() {
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(89);
    let trace = policysmith::traces::cloudphysics().trace(idx, 80_000);
    let footprint = policysmith::traces::footprint_bytes(&trace);
    let cap = (footprint / 10).max(1);
    println!(
        "trace {} — {} requests, footprint {} MiB, cache {} MiB",
        trace.name,
        trace.len(),
        footprint >> 20,
        cap >> 20
    );

    let mut rows: Vec<(String, f64)> = policies::all_baseline_names()
        .iter()
        .map(|name| {
            let r = simulate(&trace, cap, policies::by_name(name).unwrap());
            (name.to_string(), r.miss_ratio())
        })
        .collect();
    let mut cache = Cache::new(cap, paper_heuristic_a());
    rows.push(("PS-A(paper)".into(), cache.run(&trace).miss_ratio()));

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let fifo = rows.iter().find(|(n, _)| n == "FIFO").unwrap().1;
    println!("\n{:12} {:>10} {:>12}", "policy", "miss ratio", "vs FIFO");
    for (name, mr) in rows {
        println!("{name:12} {mr:>10.4} {:>+11.2}%", (fifo - mr) / fifo * 100.0);
    }
}
